//! Lemma 1 verification machinery.
//!
//! Lemma 1: *for any single-path deterministic routing, `ftree(n+m, r)` is
//! nonblocking **iff** each link carries traffic either from one source or
//! to one destination.* The audit below routes **all** `r(r-1)n²`
//! cross-switch SD pairs and checks exactly that predicate per directed
//! channel — a complete, exact decision procedure for nonblocking-ness
//! under deterministic routing.
//!
//! Two implementations coexist, deliberately:
//!
//! * the **engine path** ([`crate::engine::ContentionEngine`]) routes every
//!   pair once into a [`ftclos_routing::PathArena`] and decides the
//!   predicate from dense epoch-stamped censuses — this is what the public
//!   entry points ([`is_nonblocking_deterministic`], [`nonblocking_verdict`])
//!   use;
//! * the **legacy path** ([`LinkAudit`], [`find_contention`],
//!   [`nonblocking_verdict_legacy`]) keeps the original `HashMap`-based
//!   audit verbatim as a differential oracle — the proptests in
//!   `tests/engine_differential.rs` pin both sides to identical verdicts.

use crate::engine::ContentionEngine;
use ftclos_routing::{RouteAssignment, SinglePathRouter};
use ftclos_topo::{ChannelId, Topology};
use ftclos_traffic::SdPair;
use std::collections::HashMap;

/// Two routed SD pairs meeting on one channel — the paper's *network
/// contention*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContentionWitness {
    /// The shared channel.
    pub channel: ChannelId,
    /// First pair.
    pub a: SdPair,
    /// Second pair.
    pub b: SdPair,
}

/// Find two pairs of `assignment` sharing a channel, if any.
///
/// One-shot reference implementation (hashes every channel). Hot loops that
/// check many assignments should reuse a
/// [`crate::engine::ContentionScratch`] instead — same contract, dense
/// epoch-stamped tables, zero per-call allocation.
pub fn find_contention(assignment: &RouteAssignment) -> Option<ContentionWitness> {
    let mut owner: HashMap<ChannelId, SdPair> = HashMap::new();
    for (pair, path) in assignment.routes() {
        for &c in path.channels() {
            match owner.insert(c, *pair) {
                None => {}
                Some(prev) => {
                    return Some(ContentionWitness {
                        channel: c,
                        a: prev,
                        b: *pair,
                    })
                }
            }
        }
    }
    None
}

/// Per-channel source/destination census under a routing function.
///
/// This is the legacy `HashMap`-backed audit, retained verbatim as the
/// differential oracle for the arena/census engine (and for callers that
/// want the *full* distinct source/destination lists per channel, which the
/// saturating engine census does not keep).
///
/// ```
/// use ftclos_core::verify::{is_nonblocking_deterministic, LinkAudit};
/// use ftclos_routing::{DModK, YuanDeterministic};
/// use ftclos_topo::Ftree;
///
/// let nb = Ftree::new(2, 4, 5).unwrap();
/// assert!(is_nonblocking_deterministic(&YuanDeterministic::new(&nb).unwrap()));
///
/// let small = Ftree::new(2, 2, 5).unwrap(); // m < n²: must block
/// assert!(!is_nonblocking_deterministic(&DModK::new(&small)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct LinkAudit {
    /// channel → (distinct sources, distinct destinations) routed over it.
    per_channel: HashMap<ChannelId, (Vec<u32>, Vec<u32>)>,
}

/// A channel violating Lemma 1's predicate: it carries ≥2 sources **and**
/// ≥2 destinations, so some permutation contends on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkViolation {
    /// The offending channel.
    pub channel: ChannelId,
    /// Two distinct sources using the channel.
    pub sources: [u32; 2],
    /// Two distinct destinations reached over the channel, chosen so that
    /// `(sources[0], destinations[0])` and `(sources[1], destinations[1])`
    /// are simultaneous-routable (a valid two-pair permutation witness).
    pub destinations: [u32; 2],
}

impl LinkAudit {
    /// Route every ordered pair of distinct leaves and record, per channel,
    /// the distinct sources and destinations crossing it.
    pub fn build<R: SinglePathRouter + ?Sized>(router: &R) -> Self {
        let ports = router.ports();
        let mut per_channel: HashMap<ChannelId, (Vec<u32>, Vec<u32>)> = HashMap::new();
        for s in 0..ports {
            for d in 0..ports {
                if s == d {
                    continue;
                }
                let path = router.route(SdPair::new(s, d));
                for &c in path.channels() {
                    let entry = per_channel.entry(c).or_default();
                    if !entry.0.contains(&s) {
                        entry.0.push(s);
                    }
                    if !entry.1.contains(&d) {
                        entry.1.push(d);
                    }
                }
            }
        }
        Self { per_channel }
    }

    /// Number of channels that carry any traffic.
    pub fn used_channels(&self) -> usize {
        self.per_channel.len()
    }

    /// `(sources, destinations)` recorded for a channel.
    pub fn channel_census(&self, c: ChannelId) -> Option<(&[u32], &[u32])> {
        self.per_channel
            .get(&c)
            .map(|(s, d)| (s.as_slice(), d.as_slice()))
    }

    /// The Lemma 1 predicate: every channel has one source or one
    /// destination. Returns the first violation with a two-pair witness.
    ///
    /// Witness construction mirrors the paper's necessity proof: a channel
    /// with ≥2 sources and ≥2 destinations admits pairs `(s1, d1)`,
    /// `(s2, d2)` with `s1 != s2`, `d1 != d2` routed over it.
    pub fn lemma1_check<R: SinglePathRouter + ?Sized>(
        &self,
        router: &R,
    ) -> Result<(), LinkViolation> {
        for (&c, (sources, dests)) in &self.per_channel {
            if sources.len() < 2 || dests.len() < 2 {
                continue;
            }
            // Find (s1, d1), (s2, d2) crossing c with s1 != s2, d1 != d2.
            // Both endpoints vary on c, so such a combination exists among
            // the recorded pairs; re-derive which (s, d) combos actually
            // use c.
            let mut crossing: Vec<(u32, u32)> = Vec::new();
            for &s in sources {
                for &d in dests {
                    if s == d {
                        continue;
                    }
                    if router.route(SdPair::new(s, d)).channels().contains(&c) {
                        crossing.push((s, d));
                    }
                }
            }
            for (i, &(s1, d1)) in crossing.iter().enumerate() {
                for &(s2, d2) in &crossing[i + 1..] {
                    if s1 != s2 && d1 != d2 {
                        return Err(LinkViolation {
                            channel: c,
                            sources: [s1, s2],
                            destinations: [d1, d2],
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Convenience: is `router` nonblocking per Lemma 1? (Exact, complete.)
///
/// Engine-backed: routes every pair once into a path arena and decides the
/// predicate from the dense census — no hashing, no re-routing.
pub fn is_nonblocking_deterministic<R: SinglePathRouter + ?Sized>(router: &R) -> bool {
    match ContentionEngine::new(router) {
        Ok(engine) => engine.is_nonblocking(),
        // A router whose `ports()` disagrees with its routable universe
        // cannot serve all pairs — not nonblocking under any reading.
        Err(_) => false,
    }
}

/// The exact checker's verdict packaged for differential tests against
/// other subsystems (the fluid flow-rate simulator compares its "every
/// flow reaches rate 1.0 on every pattern" fixed point against this).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonblockingVerdict {
    /// Lemma 1 holds: no permutation contends under the routing.
    pub nonblocking: bool,
    /// When blocking, a two-pair witness permutation that contends.
    pub violation: Option<LinkViolation>,
}

impl NonblockingVerdict {
    /// The blocking witness as a pair of SD pairs, if any.
    pub fn witness_pairs(&self) -> Option<[SdPair; 2]> {
        self.violation.as_ref().map(|v| {
            [
                SdPair::new(v.sources[0], v.destinations[0]),
                SdPair::new(v.sources[1], v.destinations[1]),
            ]
        })
    }
}

/// Run the complete Lemma 1 decision procedure and package the outcome.
///
/// Engine-backed (see [`is_nonblocking_deterministic`]); the packaged
/// witness, when present, is the lowest-id violating channel's two-pair
/// permutation. [`nonblocking_verdict_legacy`] keeps the original
/// `HashMap` audit for differential pinning.
pub fn nonblocking_verdict<R: SinglePathRouter + ?Sized>(router: &R) -> NonblockingVerdict {
    let violation = match ContentionEngine::new(router) {
        Ok(engine) => engine.lemma1_violation(),
        Err(_) => {
            return NonblockingVerdict {
                nonblocking: false,
                violation: None,
            }
        }
    };
    NonblockingVerdict {
        nonblocking: violation.is_none(),
        violation,
    }
}

/// The original `HashMap`-audit decision procedure, kept as the
/// differential oracle for [`nonblocking_verdict`].
pub fn nonblocking_verdict_legacy<R: SinglePathRouter + ?Sized>(router: &R) -> NonblockingVerdict {
    match LinkAudit::build(router).lemma1_check(router) {
        Ok(()) => NonblockingVerdict {
            nonblocking: true,
            violation: None,
        },
        Err(v) => NonblockingVerdict {
            nonblocking: false,
            violation: Some(v),
        },
    }
}

/// Per-pattern exact check: does `assignment` route its pairs with zero
/// channel sharing? (The fluid model's "all flows at rate 1.0" must agree
/// with this on every pattern — the differential invariant.)
pub fn pattern_contention_free(assignment: &RouteAssignment) -> bool {
    find_contention(assignment).is_none()
}

/// Assert the stronger per-direction structure of the Theorem 3 routing on
/// a topology: every channel leaving a leaf or bottom switch (uplink) has a
/// single source; every channel entering a leaf or bottom switch (downlink)
/// has a single destination. Returns offending channel if any.
pub fn updown_discipline<R: SinglePathRouter + ?Sized>(
    router: &R,
    topo: &Topology,
) -> Result<(), ChannelId> {
    let audit = LinkAudit::build(router);
    for (&c, (sources, dests)) in &audit.per_channel {
        let ch = topo.channel(c);
        let src_level = topo.kind(ch.src).level();
        let dst_level = topo.kind(ch.dst).level();
        let going_up = match (src_level, dst_level) {
            (None, _) => true,
            (_, None) => false,
            (Some(a), Some(b)) => b > a,
        };
        if going_up {
            if sources.len() > 1 {
                return Err(c);
            }
        } else if dests.len() > 1 {
            return Err(c);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{route_all, DModK, YuanDeterministic};
    use ftclos_topo::Ftree;
    use ftclos_traffic::Permutation;

    #[test]
    fn yuan_passes_lemma1_exactly() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        assert!(is_nonblocking_deterministic(&router));
        updown_discipline(&router, ft.topology()).unwrap();
    }

    #[test]
    fn dmodk_fails_lemma1_with_witness() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let audit = LinkAudit::build(&router);
        let violation = audit.lemma1_check(&router).unwrap_err();
        // The witness is a valid blocking two-pair permutation.
        let perm = Permutation::from_pairs(
            10,
            [
                SdPair::new(violation.sources[0], violation.destinations[0]),
                SdPair::new(violation.sources[1], violation.destinations[1]),
            ],
        )
        .unwrap();
        let a = route_all(&router, &perm).unwrap();
        assert!(a.max_channel_load() >= 2, "witness must actually block");
    }

    #[test]
    fn contention_detection() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        // Both target residue 0 tops from switch 0.
        let perm = Permutation::from_pairs(10, [SdPair::new(0, 4), SdPair::new(1, 6)]).unwrap();
        let a = route_all(&router, &perm).unwrap();
        let w = find_contention(&a).expect("contention expected");
        assert_ne!(w.a, w.b);
        // And a clean assignment yields none.
        let ft2 = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft2).unwrap();
        let a2 = route_all(&yuan, &perm).unwrap();
        assert!(find_contention(&a2).is_none());
    }

    #[test]
    fn audit_census_counts() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let audit = LinkAudit::build(&router);
        // Fig. 3: uplink v -> (i,j) carries r-1 pairs from ONE source to
        // r-1 destinations.
        let up = ft.up_channel(0, 0); // v=0, top (0,0)
        let (srcs, dsts) = audit.channel_census(up).unwrap();
        assert_eq!(srcs, &[0]); // source (0,0) = leaf 0
        assert_eq!(dsts.len(), 2); // r-1 = 2 destinations (w,0), w != 0
    }

    #[test]
    fn verdict_packages_a_live_witness() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let v = nonblocking_verdict(&router);
        assert!(!v.nonblocking);
        let [a, b] = v.witness_pairs().unwrap();
        let perm = Permutation::from_pairs(10, [a, b]).unwrap();
        let assignment = route_all(&router, &perm).unwrap();
        assert!(!pattern_contention_free(&assignment));

        let roomy = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&roomy).unwrap();
        let v = nonblocking_verdict(&yuan);
        assert!(v.nonblocking && v.witness_pairs().is_none());
    }

    #[test]
    fn engine_and_legacy_verdicts_agree() {
        for (n, m, r) in [(2usize, 4usize, 5usize), (2, 2, 5), (2, 3, 4), (3, 9, 7)] {
            let ft = Ftree::new(n, m, r).unwrap();
            let router = DModK::new(&ft);
            let fast = nonblocking_verdict(&router);
            let slow = nonblocking_verdict_legacy(&router);
            assert_eq!(fast.nonblocking, slow.nonblocking, "n={n} m={m} r={r}");
            // Both witnesses, when present, are live blocking permutations.
            for v in [&fast, &slow] {
                if let Some([a, b]) = v.witness_pairs() {
                    let perm = Permutation::from_pairs((n * r) as u32, [a, b]).unwrap();
                    let routed = route_all(&router, &perm).unwrap();
                    assert!(routed.max_channel_load() >= 2);
                }
            }
        }
    }

    #[test]
    fn theorem2_small_m_always_blocks() {
        // For every m < n^2 = 4, d-mod-k (and in fact ANY single-path
        // deterministic routing, per Theorem 2 — we test the ones we have)
        // violates Lemma 1 on ftree(2+m, 5).
        for m in 1..4usize {
            let ft = Ftree::new(2, m, 5).unwrap();
            let router = DModK::new(&ft);
            assert!(
                !is_nonblocking_deterministic(&router),
                "m = {m} should block"
            );
        }
    }
}
