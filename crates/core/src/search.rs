//! Blocking-permutation search and blocking-probability estimation.

use crate::engine::ContentionEngine;
use crate::verify::find_contention;
use ftclos_routing::{route_all, PatternRouter, RoutingError, SinglePathRouter};
use ftclos_traffic::enumerate::{AllPermutations, TwoPairs};
use ftclos_traffic::{patterns, Permutation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Outcome of the complete two-pair blocking search.
///
/// The search previously returned `Option<Permutation>` computed with
/// `route_all(..).ok()?`, so a routing *error* silently terminated the scan
/// and read as "no blocking permutation found". The three cases are now
/// distinct: a blocking witness, a routing failure (the claim is
/// undecided), or a genuinely exhausted search (the router is nonblocking).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwoPairOutcome {
    /// A two-pair permutation that blocks (two pairs with distinct sources
    /// and distinct destinations share a channel).
    Blocking(Permutation),
    /// The router failed to route some pair — the search is inconclusive,
    /// NOT a nonblocking verdict.
    RoutingFailed(RoutingError),
    /// Every two-pair pattern routed contention-free: the router is
    /// nonblocking (Lemma 1 makes two-pair patterns a complete test).
    Exhausted {
        /// Distinct SD paths covered by the sweep (`ports·(ports-1)`).
        paths_covered: usize,
    },
}

impl TwoPairOutcome {
    /// The blocking witness, if the search found one.
    pub fn witness(&self) -> Option<&Permutation> {
        match self {
            TwoPairOutcome::Blocking(p) => Some(p),
            _ => None,
        }
    }

    /// Consume into the blocking witness, if any.
    pub fn into_witness(self) -> Option<Permutation> {
        match self {
            TwoPairOutcome::Blocking(p) => Some(p),
            _ => None,
        }
    }

    /// True when the search completed and found no blocking pattern — a
    /// positive nonblocking verdict (routing errors return `false` here AND
    /// `false` from [`TwoPairOutcome::found_blocking`]).
    pub fn is_nonblocking(&self) -> bool {
        matches!(self, TwoPairOutcome::Exhausted { .. })
    }

    /// True when a blocking witness was found.
    pub fn found_blocking(&self) -> bool {
        matches!(self, TwoPairOutcome::Blocking(_))
    }
}

/// Complete blocking search for single-path deterministic routers: by
/// Lemma 1 a blocking permutation exists **iff** a two-pair pattern blocks.
///
/// Engine-backed: routes all `ports·(ports-1)` SD paths once into a
/// [`ftclos_routing::PathArena`] and scans per-channel pair-incidence lists
/// instead of routing `O(ports⁴)` two-pair patterns — two pairs block iff
/// their cached paths share a channel whose census has ≥2 sources and ≥2
/// destinations. The channel scan runs in parallel with a deterministic
/// first-witness reduction (lowest violating channel id), so the witness is
/// stable across thread counts. [`find_blocking_two_pair_legacy`] keeps the
/// original loop as the differential oracle.
pub fn find_blocking_two_pair<R: SinglePathRouter + ?Sized>(router: &R) -> TwoPairOutcome {
    let engine = match ContentionEngine::new(router) {
        Ok(e) => e,
        Err(e) => return TwoPairOutcome::RoutingFailed(e),
    };
    match engine.blocking_witness() {
        Some((_, pairs)) => match Permutation::from_pairs(router.ports(), pairs) {
            Ok(perm) => TwoPairOutcome::Blocking(perm),
            Err(_) => unreachable!("witness pairs have distinct sources and destinations"),
        },
        None => TwoPairOutcome::Exhausted {
            paths_covered: engine.arena().num_pairs(),
        },
    }
}

/// The original `O(ports⁴)` route-everything two-pair sweep, kept as the
/// differential oracle for [`find_blocking_two_pair`] (and for the E20
/// before/after benchmark). Same typed outcome; routing errors are reported
/// instead of silently reading as "nonblocking".
pub fn find_blocking_two_pair_legacy<R: SinglePathRouter + ?Sized>(router: &R) -> TwoPairOutcome {
    let ports = router.ports();
    for perm in TwoPairs::new(ports, true) {
        let a = match route_all(router, &perm) {
            Ok(a) => a,
            Err(e) => return TwoPairOutcome::RoutingFailed(e),
        };
        if find_contention(&a).is_some() {
            return TwoPairOutcome::Blocking(perm);
        }
    }
    TwoPairOutcome::Exhausted {
        paths_covered: (ports as usize) * (ports as usize).saturating_sub(1),
    }
}

/// Exhaustive sweep of every full permutation (use only for tiny fabrics,
/// `ports <= 8`). Returns the first permutation the pattern router blocks
/// or fails to route.
pub fn find_blocking_exhaustive<R: PatternRouter + ?Sized>(router: &R) -> Option<Permutation> {
    for perm in AllPermutations::new(router.ports()) {
        match router.route_pattern(&perm) {
            Ok(a) => {
                if a.max_channel_load() > 1 {
                    return Some(perm);
                }
            }
            Err(_) => return Some(perm),
        }
    }
    None
}

/// Randomized sweep: `samples` random full permutations from `seed`.
/// Returns the first blocked one.
pub fn find_blocking_random<R: PatternRouter + ?Sized>(
    router: &R,
    samples: usize,
    seed: u64,
) -> Option<Permutation> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..samples {
        let perm = patterns::random_full(router.ports(), &mut rng);
        match router.route_pattern(&perm) {
            Ok(a) => {
                if a.max_channel_load() > 1 {
                    return Some(perm);
                }
            }
            Err(_) => return Some(perm),
        }
    }
    None
}

/// Result of a blocking-probability estimation sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingReport {
    /// Permutations sampled.
    pub samples: usize,
    /// Permutations with at least one contended channel.
    pub blocked: usize,
    /// Mean of the max channel load over samples.
    pub mean_max_load: f64,
}

impl BlockingReport {
    /// Fraction of sampled permutations that blocked.
    pub fn blocking_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.blocked as f64 / self.samples as f64
        }
    }
}

/// Estimate the blocking probability of `router` over random full
/// permutations. Runs samples in parallel (each sample gets an independent
/// seeded RNG, so results are reproducible regardless of thread count).
pub fn blocking_report<R: PatternRouter + Sync + ?Sized>(
    router: &R,
    samples: usize,
    seed: u64,
) -> BlockingReport {
    let results: Vec<u32> = (0..samples)
        .into_par_iter()
        .map(|i| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let perm = patterns::random_full(router.ports(), &mut rng);
            match router.route_pattern(&perm) {
                Ok(a) => a.max_channel_load(),
                Err(_) => u32::MAX,
            }
        })
        .collect();
    let blocked = results.iter().filter(|&&l| l > 1).count();
    let mean_max_load = if samples == 0 {
        0.0
    } else {
        results
            .iter()
            .map(|&l| if l == u32::MAX { f64::NAN } else { l as f64 })
            .sum::<f64>()
            / samples as f64
    };
    BlockingReport {
        samples,
        blocked,
        mean_max_load,
    }
}

/// The *exact* blocking probability over all full permutations, by
/// exhaustive enumeration. Returns `(blocked, total)`; `None` when
/// `ports > max_ports` (`ports!` grows too fast — 8! = 40320 is the
/// practical ceiling for pattern routers).
pub fn exact_blocking_fraction<R: PatternRouter + ?Sized>(
    router: &R,
    max_ports: u32,
) -> Option<(u64, u64)> {
    if router.ports() > max_ports {
        return None;
    }
    let mut blocked = 0u64;
    let mut total = 0u64;
    for perm in AllPermutations::new(router.ports()) {
        total += 1;
        match router.route_pattern(&perm) {
            Ok(a) if a.max_channel_load() <= 1 => {}
            _ => blocked += 1,
        }
    }
    Some((blocked, total))
}

/// Blocking fraction as a function of load density: for each density `d`,
/// sample random *partial* permutations where each leaf participates with
/// probability `d`, and report the fraction that contend. This is the
/// blocking-probability curve of the related-work literature; a nonblocking
/// fabric is flat at zero.
pub fn blocking_vs_density<R: PatternRouter + Sync + ?Sized>(
    router: &R,
    densities: &[f64],
    samples_per_density: usize,
    seed: u64,
) -> Vec<(f64, f64)> {
    densities
        .iter()
        .map(|&density| {
            let blocked: usize = (0..samples_per_density)
                .into_par_iter()
                .map(|i| {
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        seed ^ (i as u64 + 1).wrapping_mul(0x2545_F491_4F6C_DD1D)
                            ^ density.to_bits(),
                    );
                    let perm = patterns::random_partial(router.ports(), density, &mut rng);
                    match router.route_pattern(&perm) {
                        Ok(a) => usize::from(a.max_channel_load() > 1),
                        Err(_) => 1,
                    }
                })
                .sum();
            (density, blocked as f64 / samples_per_density.max(1) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{DModK, GreedyLocalAdaptive, NonblockingAdaptive, YuanDeterministic};
    use ftclos_topo::Ftree;

    #[test]
    fn two_pair_search_finds_dmodk_witness() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let outcome = find_blocking_two_pair(&router);
        assert!(outcome.found_blocking() && !outcome.is_nonblocking());
        let perm = outcome.into_witness().expect("m < n^2 must block");
        let a = route_all(&router, &perm).unwrap();
        assert!(a.max_channel_load() >= 2);
    }

    #[test]
    fn two_pair_search_clears_yuan() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let outcome = find_blocking_two_pair(&router);
        assert!(outcome.is_nonblocking());
        assert_eq!(outcome, TwoPairOutcome::Exhausted { paths_covered: 90 });
        assert!(outcome.witness().is_none());
    }

    #[test]
    fn two_pair_engine_agrees_with_legacy_loop() {
        for (n, m, r) in [(2usize, 2usize, 5usize), (2, 4, 5), (3, 4, 6), (3, 9, 7)] {
            let ft = Ftree::new(n, m, r).unwrap();
            let router = DModK::new(&ft);
            let fast = find_blocking_two_pair(&router);
            let slow = find_blocking_two_pair_legacy(&router);
            assert_eq!(
                fast.is_nonblocking(),
                slow.is_nonblocking(),
                "n={n} m={m} r={r}"
            );
            assert_eq!(fast.found_blocking(), slow.found_blocking());
            // Witnesses may differ (the engine normalizes on the lowest
            // violating channel); both must actually contend.
            for w in [fast.witness(), slow.witness()].into_iter().flatten() {
                let a = route_all(&router, w).unwrap();
                assert!(a.max_channel_load() >= 2, "n={n} m={m} r={r}");
            }
        }
    }

    #[test]
    fn two_pair_legacy_reports_routing_errors() {
        use ftclos_routing::{Path, RoutingError};
        use ftclos_traffic::SdPair;
        /// Claims 4 ports but routes none of them.
        struct Liar;
        impl ftclos_routing::SinglePathRouter for Liar {
            fn ports(&self) -> u32 {
                4
            }
            fn route(&self, _: SdPair) -> Path {
                Path::empty()
            }
            fn try_route(&self, _: SdPair) -> Result<Path, RoutingError> {
                Err(RoutingError::PortOutOfRange { port: 0, ports: 0 })
            }
            fn name(&self) -> &'static str {
                "liar"
            }
        }
        let fast = find_blocking_two_pair(&Liar);
        let slow = find_blocking_two_pair_legacy(&Liar);
        assert!(matches!(fast, TwoPairOutcome::RoutingFailed(_)), "{fast:?}");
        assert!(matches!(slow, TwoPairOutcome::RoutingFailed(_)), "{slow:?}");
        assert!(
            !fast.is_nonblocking(),
            "errors must not read as nonblocking"
        );
    }

    #[test]
    fn exhaustive_tiny_sweeps() {
        // ftree(2+4, 3): Yuan routing survives all 720 permutations.
        let ft = Ftree::new(2, 4, 3).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        assert!(find_blocking_exhaustive(&yuan).is_none());
        // d-mod-k with m = 2 on the same shape blocks some permutation.
        let ft2 = Ftree::new(2, 2, 3).unwrap();
        let dmodk = DModK::new(&ft2);
        assert!(find_blocking_exhaustive(&dmodk).is_some());
    }

    #[test]
    fn random_search_is_deterministic_per_seed() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let a = find_blocking_random(&router, 100, 7);
        let b = find_blocking_random(&router, 100, 7);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn blocking_report_orders_routers() {
        let ft = Ftree::new(3, 3, 7).unwrap();
        let dmodk = DModK::new(&ft);
        let greedy = GreedyLocalAdaptive::new(&ft);
        let rep_d = blocking_report(&dmodk, 60, 3);
        let rep_g = blocking_report(&greedy, 60, 3);
        assert!(rep_d.blocking_fraction() > 0.0);
        assert!(
            rep_g.blocking_fraction() <= rep_d.blocking_fraction(),
            "greedy {} vs dmodk {}",
            rep_g.blocking_fraction(),
            rep_d.blocking_fraction()
        );
        assert!(rep_d.mean_max_load >= 1.0);
    }

    #[test]
    fn blocking_report_zero_for_nonblocking_adaptive() {
        let ft = Ftree::new(2, 16, 4).unwrap();
        let router = NonblockingAdaptive::new(&ft).unwrap();
        let rep = blocking_report(&router, 40, 9);
        assert_eq!(rep.blocked, 0);
        assert!((rep.mean_max_load - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_reproducible_across_calls() {
        let ft = Ftree::new(2, 2, 4).unwrap();
        let router = DModK::new(&ft);
        let a = blocking_report(&router, 50, 11);
        let b = blocking_report(&router, 50, 11);
        assert_eq!(a.blocked, b.blocked);
    }

    #[test]
    fn exact_blocking_counts() {
        // ftree(2+1, 3): one top switch, 6 leaves. Yuan routing cannot
        // apply (m < n²); d-mod-k funnels all cross traffic through the
        // single top. Count the exactly-blocked permutations.
        let ft = Ftree::new(2, 1, 3).unwrap();
        let dmodk = DModK::new(&ft);
        let (blocked, total) = exact_blocking_fraction(&dmodk, 8).unwrap();
        assert_eq!(total, 720);
        assert!(blocked > 400, "single-top fabric blocks most permutations");
        assert!(blocked < total, "identity-like permutations never block");

        // The Theorem 3 fabric at the same size: exactly zero.
        let nb = Ftree::new(2, 4, 3).unwrap();
        let yuan = YuanDeterministic::new(&nb).unwrap();
        let (blocked, total) = exact_blocking_fraction(&yuan, 8).unwrap();
        assert_eq!((blocked, total), (0, 720));

        // Guard for large fabrics.
        let big = Ftree::new(3, 9, 7).unwrap();
        let yuan_big = YuanDeterministic::new(&big).unwrap();
        assert_eq!(exact_blocking_fraction(&yuan_big, 8), None);
    }

    #[test]
    fn density_curve_is_roughly_monotone_and_zero_for_nonblocking() {
        let ft = Ftree::new(3, 4, 7).unwrap();
        let dmodk = DModK::new(&ft);
        let curve = blocking_vs_density(&dmodk, &[0.1, 0.5, 1.0], 80, 3);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].1 <= curve[2].1 + 0.1, "denser loads block more");
        assert!(curve[2].1 > 0.5, "full load blocks often at m < n²");

        let nb = Ftree::new(3, 9, 7).unwrap();
        let yuan = YuanDeterministic::new(&nb).unwrap();
        let flat = blocking_vs_density(&yuan, &[0.25, 0.75, 1.0], 60, 4);
        assert!(flat.iter().all(|&(_, f)| f == 0.0));
    }

    #[test]
    fn empty_sample_report() {
        let ft = Ftree::new(2, 2, 4).unwrap();
        let router = DModK::new(&ft);
        let rep = blocking_report(&router, 0, 1);
        assert_eq!(rep.blocking_fraction(), 0.0);
    }
}
