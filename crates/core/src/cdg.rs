//! Channel-dependency-graph (CDG) deadlock analysis.
//!
//! The paper's nonblocking results (Lemma 1, NONBLOCKINGADAPTIVE) bound
//! *contention*, not *deadlock*: a routing can be contention-free for every
//! permutation yet wedge forever once finite buffers couple channels into a
//! cyclic wait. The classical bridge is the **channel dependency graph** of
//! Dally & Seitz: a directed graph whose vertices are the fabric's directed
//! channels, with an edge `a → b` whenever some routed path crosses `a` and
//! then immediately `b`. If the CDG is acyclic the routing is deadlock-free
//! — the sufficient condition of "Existence of Deadlock-Free Routing for
//! Arbitrary Networks" (arxiv 2503.04583), which also shows the condition is
//! exact for deterministic/oblivious routings once escape channels are
//! accounted for; "Deadlock-free routing for Full-mesh networks without
//! using Virtual Channels" (arxiv 2510.14730) applies the same check without
//! VCs, which is the regime this workspace models (one FIFO per channel).
//!
//! For every router in this workspace the up*/down* shape of folded-Clos
//! paths makes the CDG trivially acyclic — each hop strictly ascends until
//! the top switch and strictly descends after — and
//! [`ChannelDependencyGraph::updown_order_certificate`] checks that layering
//! directly (a linear rank certificate: a constructive witness of
//! acyclicity, strictly cheaper than SCC). The general verdict comes from
//! [`ChannelDependencyGraph::check`]: an iterative Tarjan SCC pass with
//! deterministic witness extraction — the witness cycle starts at the
//! globally lowest-numbered cyclic channel and is the minimal-length,
//! lexicographically-first cycle through it, so verdicts are byte-identical
//! across thread counts and runs.
//!
//! The extractors walk route sets exactly as the arena does — every SD pair
//! of the fabric, every branch of a multipath/adaptive route set (branches
//! in sorted channel order) — and record dependencies into a dense
//! word-aligned bitmap CSR: channel `a`'s successor universe is the
//! out-channel list of the node `a` points into, so a row needs only
//! `⌈out_degree/64⌉` words. Parallel builds set bits with relaxed atomic
//! `fetch_or`; set union is order-independent, so the resulting graph does
//! not depend on `RAYON_NUM_THREADS`.
//!
//! [`ValleyRouter`] is the in-tree counterexample: a deliberately
//! deadlock-*prone* "valley" routing (down→up bounce through a neighbor
//! switch) whose CDG contains a 2r-channel cycle for `r ≥ 3`, exercising
//! witness extraction, [`attribute_witness`], and the sim-level credit-stall
//! reproduction in `ftclos-sim`.

use ftclos_obs::{Noop, Recorder};
use ftclos_routing::{
    DModK, ObliviousMultipath, Path, RouteAssignment, SModK, SinglePathRouter, SpreadPolicy,
    YuanDeterministic,
};
use ftclos_topo::{ChannelId, FaultSet, FaultyView, Ftree, Topology, Transition};
use ftclos_traffic::SdPair;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::churn::ChurnEvent;

/// The topology-derived frame of a CDG: per-node channel lists sorted by
/// id, per-channel endpoints, and the word layout of the successor bitmap.
///
/// Successors of channel `a` are always a subset of the out-channels of the
/// node `a` points into (`head(a)`), so the bitmap stores one bit per
/// (channel, head-out-slot) pair instead of a dense `C × C` matrix.
#[derive(Debug)]
struct DependencySkeleton {
    /// Out-channels of each node, sorted ascending by channel id
    /// (the topology's own lists are port-ordered).
    out_sorted: Vec<ChannelId>,
    /// CSR offsets into `out_sorted`, length `nodes + 1`.
    out_start: Vec<u32>,
    /// In-channels of each node, sorted ascending by channel id.
    in_sorted: Vec<ChannelId>,
    /// CSR offsets into `in_sorted`, length `nodes + 1`.
    in_start: Vec<u32>,
    /// Receiving node of each channel.
    head: Vec<u32>,
    /// Transmitting node of each channel.
    tail: Vec<u32>,
    /// Index of each channel within its tail node's sorted out-list.
    pos_in_out: Vec<u32>,
    /// First bitmap word of each channel's successor row, length
    /// `channels + 1` (a row spans `⌈out_degree(head)/64⌉` words).
    word_start: Vec<u32>,
    /// Whether the channel ascends a level (leaves count as level 0).
    is_up: Vec<bool>,
    /// Up*/down* layering rank of each channel (see
    /// [`ChannelDependencyGraph::updown_order_certificate`]).
    rank: Vec<u32>,
    /// Per-node bitmap over its sorted out-list marking *up* channels,
    /// word-aligned like the successor rows (offsets in `mask_start`).
    up_mask: Vec<u64>,
    /// Word offsets into `up_mask`, length `nodes + 1`.
    mask_start: Vec<u32>,
}

impl DependencySkeleton {
    fn new(topo: &Topology) -> Self {
        let nodes = topo.num_nodes();
        let chans = topo.num_channels();
        let level = |n: ftclos_topo::NodeId| u32::from(topo.kind(n).level().unwrap_or(0));
        let max_level = u32::from(topo.max_level());

        let mut out_sorted = Vec::with_capacity(chans);
        let mut out_start = Vec::with_capacity(nodes + 1);
        let mut in_sorted = Vec::with_capacity(chans);
        let mut in_start = Vec::with_capacity(nodes + 1);
        out_start.push(0u32);
        in_start.push(0u32);
        for node in topo.node_ids() {
            let lo = out_sorted.len();
            out_sorted.extend_from_slice(topo.out_channels(node));
            out_sorted[lo..].sort_unstable();
            out_start.push(out_sorted.len() as u32);
            let li = in_sorted.len();
            in_sorted.extend_from_slice(topo.in_channels(node));
            in_sorted[li..].sort_unstable();
            in_start.push(in_sorted.len() as u32);
        }

        let mut head = vec![0u32; chans];
        let mut tail = vec![0u32; chans];
        let mut is_up = vec![false; chans];
        let mut rank = vec![0u32; chans];
        for c in topo.channel_ids() {
            let ch = topo.channel(c);
            head[c.index()] = ch.dst.0;
            tail[c.index()] = ch.src.0;
            let up = level(ch.dst) > level(ch.src);
            is_up[c.index()] = up;
            // Ascents rank by the level they climb into (1..L); descents by
            // 2L+1 minus the level they leave (L+1..2L+1). Every up*/down*
            // path is strictly increasing in rank; any valley turn
            // (down-then-up) is a strict decrease.
            rank[c.index()] = if up {
                level(ch.dst)
            } else {
                2 * max_level + 1 - level(ch.src)
            };
        }

        let mut pos_in_out = vec![0u32; chans];
        for node in 0..nodes {
            let lo = out_start[node] as usize;
            let hi = out_start[node + 1] as usize;
            for (pos, &c) in out_sorted[lo..hi].iter().enumerate() {
                pos_in_out[c.index()] = pos as u32;
            }
        }

        let words_of_node =
            |node: usize| ((out_start[node + 1] - out_start[node]) as usize).div_ceil(64);
        let mut word_start = Vec::with_capacity(chans + 1);
        word_start.push(0u32);
        for c in 0..chans {
            let w = word_start[c] as usize + words_of_node(head[c] as usize);
            word_start.push(w as u32);
        }

        let mut mask_start = Vec::with_capacity(nodes + 1);
        mask_start.push(0u32);
        let mut up_mask = Vec::new();
        for node in 0..nodes {
            let lo = out_start[node] as usize;
            let hi = out_start[node + 1] as usize;
            let base = up_mask.len();
            up_mask.resize(base + words_of_node(node), 0u64);
            for (pos, &c) in out_sorted[lo..hi].iter().enumerate() {
                if is_up[c.index()] {
                    up_mask[base + pos / 64] |= 1u64 << (pos % 64);
                }
            }
            mask_start.push(up_mask.len() as u32);
        }

        Self {
            out_sorted,
            out_start,
            in_sorted,
            in_start,
            head,
            tail,
            pos_in_out,
            word_start,
            is_up,
            rank,
            up_mask,
            mask_start,
        }
    }

    #[inline]
    fn out_row(&self, node: usize) -> &[ChannelId] {
        &self.out_sorted[self.out_start[node] as usize..self.out_start[node + 1] as usize]
    }

    #[inline]
    fn in_row(&self, node: usize) -> &[ChannelId] {
        &self.in_sorted[self.in_start[node] as usize..self.in_start[node + 1] as usize]
    }

    #[inline]
    fn num_words(&self) -> usize {
        *self.word_start.last().unwrap_or(&0) as usize
    }

    /// Bitmap word and bit of the dependency `a → b`. `None` when `b` does
    /// not leave the node `a` points into (no such dependency can exist).
    #[inline]
    fn bit_of(&self, a: ChannelId, b: ChannelId) -> Option<(usize, u64)> {
        if self.head[a.index()] != self.tail[b.index()] {
            return None;
        }
        let pos = self.pos_in_out[b.index()];
        let word = self.word_start[a.index()] as usize + (pos / 64) as usize;
        Some((word, 1u64 << (pos % 64)))
    }
}

/// The outcome of a CDG cycle check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadlockVerdict {
    /// The CDG is acyclic: the route set is deadlock-free.
    Free,
    /// The CDG contains a cycle; `witness` is a concrete channel cycle
    /// (each channel depends on the next, the last on the first),
    /// deterministically chosen: it starts at the lowest-numbered cyclic
    /// channel and is a minimal-length cycle through it.
    Cyclic {
        /// The witness cycle, in dependency order.
        witness: Vec<ChannelId>,
    },
}

impl DeadlockVerdict {
    /// Whether the verdict proves deadlock-freedom.
    pub fn is_free(&self) -> bool {
        matches!(self, DeadlockVerdict::Free)
    }

    /// The witness cycle, if any.
    pub fn witness(&self) -> Option<&[ChannelId]> {
        match self {
            DeadlockVerdict::Free => None,
            DeadlockVerdict::Cyclic { witness } => Some(witness),
        }
    }
}

/// Summary of one CDG cycle check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleAnalysis {
    /// Total channel→channel dependencies recorded.
    pub num_deps: u64,
    /// Dependencies that descend and then ascend — zero for any strict
    /// up*/down* routing; nonzero valley turns are where cycles can form.
    pub valley_turns: u64,
    /// Channels on at least one dependency cycle (0 when free).
    pub cyclic_channels: usize,
    /// The verdict, with a witness cycle when cyclic.
    pub verdict: DeadlockVerdict,
}

impl CycleAnalysis {
    /// Whether the analysis proves deadlock-freedom.
    pub fn is_free(&self) -> bool {
        self.verdict.is_free()
    }
}

/// A channel dependency graph over a fixed topology: for each directed
/// channel, a bitmap over the out-channels of the node it points into.
///
/// Build one with [`build_cdg`] (or an extractor like [`cdg_of_router`]),
/// then judge it with [`ChannelDependencyGraph::check`].
#[derive(Debug)]
pub struct ChannelDependencyGraph {
    skel: DependencySkeleton,
    bits: Vec<u64>,
    num_deps: u64,
}

impl ChannelDependencyGraph {
    /// Number of directed channels (CDG vertices).
    pub fn num_channels(&self) -> usize {
        self.skel.head.len()
    }

    /// Number of dependencies (CDG edges).
    pub fn num_deps(&self) -> u64 {
        self.num_deps
    }

    /// Whether some routed path crosses `a` and then immediately `b`.
    pub fn has_dep(&self, a: ChannelId, b: ChannelId) -> bool {
        match self.skel.bit_of(a, b) {
            Some((word, mask)) => self.bits[word] & mask != 0,
            None => false,
        }
    }

    /// Successors of `a` in ascending channel order.
    pub fn successors(&self, a: ChannelId) -> impl Iterator<Item = ChannelId> + '_ {
        let mut pos = 0u32;
        std::iter::from_fn(move || {
            let (p, c) = self.next_succ(a.index(), pos)?;
            pos = p + 1;
            Some(c)
        })
    }

    /// Next set successor of channel `a` at out-slot `≥ from`, as
    /// `(slot, channel)`. Slots index the sorted out-list of `head(a)`, so
    /// ascending slots mean ascending channel ids.
    fn next_succ(&self, a: usize, from: u32) -> Option<(u32, ChannelId)> {
        let node = self.skel.head[a] as usize;
        let row = self.skel.out_row(node);
        let deg = row.len() as u32;
        let base = self.skel.word_start[a] as usize;
        let mut pos = from;
        while pos < deg {
            let word = self.bits[base + (pos / 64) as usize] >> (pos % 64);
            if word == 0 {
                pos = (pos / 64 + 1) * 64;
                continue;
            }
            pos += word.trailing_zeros();
            if pos >= deg {
                return None;
            }
            return Some((pos, row[pos as usize]));
        }
        None
    }

    /// Count of down→up dependencies (see [`CycleAnalysis::valley_turns`]).
    fn valley_turns(&self) -> u64 {
        let mut total = 0u64;
        for a in 0..self.num_channels() {
            if self.skel.is_up[a] {
                continue;
            }
            let node = self.skel.head[a] as usize;
            let base = self.skel.word_start[a] as usize;
            let mbase = self.skel.mask_start[node] as usize;
            let words = self.skel.mask_start[node + 1] as usize - mbase;
            for w in 0..words {
                total +=
                    u64::from((self.bits[base + w] & self.skel.up_mask[mbase + w]).count_ones());
            }
        }
        total
    }

    /// The Dally–Seitz sufficient condition, checked constructively via the
    /// up*/down* layering: every channel gets a rank (ascents ordered by the
    /// level they climb into, then descents by the level they leave), and if
    /// every dependency strictly increases the rank, that linear order
    /// witnesses acyclicity — the routing is deadlock-free without running
    /// SCC (arxiv 2503.04583's existence condition, instantiated with the
    /// folded-Clos ordering). Returns the first rank-violating dependency
    /// otherwise; a violation does *not* prove a deadlock (the condition is
    /// only sufficient) — [`ChannelDependencyGraph::check`] decides.
    pub fn updown_order_certificate(&self) -> Result<(), (ChannelId, ChannelId)> {
        for a in 0..self.num_channels() {
            let ra = self.skel.rank[a];
            let mut pos = 0u32;
            while let Some((p, b)) = self.next_succ(a, pos) {
                pos = p + 1;
                if ra >= self.skel.rank[b.index()] {
                    return Err((ChannelId(a as u32), b));
                }
            }
        }
        Ok(())
    }

    /// Run the cycle check: Tarjan SCC plus deterministic witness
    /// extraction. See [`ChannelDependencyGraph::check_with`].
    pub fn check(&self) -> CycleAnalysis {
        self.check_with(&Noop)
    }

    /// [`ChannelDependencyGraph::check`] with instrumentation: the pass runs
    /// under span `cdg.scc` and records the `cdg.cyclic_channels` gauge.
    pub fn check_with<R: Recorder>(&self, rec: &R) -> CycleAnalysis {
        let _span = rec.span("cdg.scc");
        let (comp, comp_size) = self.tarjan();
        let mut cyclic_channels = 0usize;
        let mut lowest = None;
        for c in 0..self.num_channels() {
            let ch = ChannelId(c as u32);
            if comp_size[comp[c] as usize] > 1 || self.has_dep(ch, ch) {
                cyclic_channels += 1;
                if lowest.is_none() {
                    lowest = Some(c);
                }
            }
        }
        rec.gauge("cdg.cyclic_channels", cyclic_channels as u64);
        let verdict = match lowest {
            None => DeadlockVerdict::Free,
            Some(c0) => DeadlockVerdict::Cyclic {
                witness: self.extract_witness(c0, &comp),
            },
        };
        CycleAnalysis {
            num_deps: self.num_deps,
            valley_turns: self.valley_turns(),
            cyclic_channels,
            verdict,
        }
    }

    /// Iterative Tarjan over the bitmap CSR. Returns the component id of
    /// each channel and each component's size. Successors are visited in
    /// ascending channel order, so component numbering is deterministic.
    fn tarjan(&self) -> (Vec<u32>, Vec<u32>) {
        const UNSET: u32 = u32::MAX;
        let n = self.num_channels();
        let mut index = vec![UNSET; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![UNSET; n];
        let mut comp_size: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        // (channel, next out-slot to try) — the recursion, made explicit.
        let mut frames: Vec<(u32, u32)> = Vec::new();
        let mut next_index = 0u32;
        for root in 0..n {
            if index[root] != UNSET {
                continue;
            }
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root as u32);
            on_stack[root] = true;
            frames.push((root as u32, 0));
            while let Some(frame) = frames.last_mut() {
                let v = frame.0 as usize;
                if let Some((pos, w)) = self.next_succ(v, frame.1) {
                    frame.1 = pos + 1;
                    let w = w.index();
                    if index[w] == UNSET {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w as u32);
                        on_stack[w] = true;
                        frames.push((w as u32, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(parent) = frames.last() {
                        let p = parent.0 as usize;
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let cid = comp_size.len() as u32;
                        let mut size = 0u32;
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp[w as usize] = cid;
                            size += 1;
                            if w as usize == v {
                                break;
                            }
                        }
                        comp_size.push(size);
                    }
                }
            }
        }
        (comp, comp_size)
    }

    /// The deterministic witness: a minimal-length cycle through the
    /// lowest-numbered cyclic channel `c0`, ties broken by lowest channel
    /// id at every step (reverse BFS explores predecessors in ascending
    /// order, so the first-found shortest path is the lexicographic
    /// minimum).
    fn extract_witness(&self, c0: usize, comp: &[u32]) -> Vec<ChannelId> {
        let start = ChannelId(c0 as u32);
        if self.has_dep(start, start) {
            return vec![start];
        }
        let n = self.num_channels();
        let cid = comp[c0];
        // dist[x] = hops on the shortest x ⇝ c0 path inside the SCC;
        // next[x] = the successor on that path.
        let mut dist = vec![u32::MAX; n];
        let mut next = vec![u32::MAX; n];
        dist[c0] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(c0 as u32);
        while let Some(b) = queue.pop_front() {
            let node = self.skel.tail[b as usize] as usize;
            for &a in self.skel.in_row(node) {
                let ai = a.index();
                if comp[ai] == cid && dist[ai] == u32::MAX && self.has_dep(a, ChannelId(b)) {
                    dist[ai] = dist[b as usize] + 1;
                    next[ai] = b;
                    queue.push_back(a.0);
                }
            }
        }
        // Close the cycle through the best successor of c0.
        let mut best: Option<(u32, u32)> = None;
        let mut pos = 0u32;
        while let Some((p, u)) = self.next_succ(c0, pos) {
            pos = p + 1;
            let ui = u.index();
            if comp[ui] == cid && dist[ui] != u32::MAX {
                let key = (dist[ui], u.0);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let mut cycle = vec![start];
        let Some((_, first)) = best else {
            // Unreachable for a >1-sized SCC; degrade to the self-witness.
            return cycle;
        };
        let mut cur = first;
        while cur as usize != c0 {
            cycle.push(ChannelId(cur));
            cur = next[cur as usize];
        }
        cycle
    }
}

/// Build a CDG by walking every SD pair's route set in parallel.
///
/// `paths_of` is called once per ordered pair `(s, d)` with `s, d < ports`
/// and must invoke the emit callback once per path branch of that pair (a
/// single-path router emits one path; multipath/adaptive route sets emit
/// each branch, in sorted channel order). Dependencies are the union over
/// all emitted paths of consecutive channel pairs — a set union, so the
/// result is independent of thread count and emission order.
pub fn build_cdg<F>(topo: &Topology, ports: u32, paths_of: F) -> ChannelDependencyGraph
where
    F: Fn(SdPair, &mut dyn FnMut(&[ChannelId])) + Sync,
{
    build_cdg_with(topo, ports, paths_of, &Noop)
}

/// [`build_cdg`] with instrumentation: the build runs under span
/// `cdg.build` and records the `cdg.deps` counter and `cdg.channels` /
/// `cdg.bitmap_words` gauges.
pub fn build_cdg_with<F, R>(
    topo: &Topology,
    ports: u32,
    paths_of: F,
    rec: &R,
) -> ChannelDependencyGraph
where
    F: Fn(SdPair, &mut dyn FnMut(&[ChannelId])) + Sync,
    R: Recorder,
{
    let _span = rec.span("cdg.build");
    let skel = DependencySkeleton::new(topo);
    let bits_atomic: Vec<AtomicU64> = (0..skel.num_words()).map(|_| AtomicU64::new(0)).collect();
    (0..ports).into_par_iter().for_each(|s| {
        let mut emit = |path: &[ChannelId]| {
            for w in path.windows(2) {
                let Some((word, mask)) = skel.bit_of(w[0], w[1]) else {
                    debug_assert!(false, "path hops {} -> {} are not adjacent", w[0], w[1]);
                    continue;
                };
                bits_atomic[word].fetch_or(mask, Ordering::Relaxed);
            }
        };
        for d in 0..ports {
            paths_of(SdPair::new(s, d), &mut emit);
        }
    });
    let bits: Vec<u64> = bits_atomic.into_iter().map(AtomicU64::into_inner).collect();
    let num_deps: u64 = bits.iter().map(|w| u64::from(w.count_ones())).sum();
    rec.add("cdg.deps", num_deps);
    rec.gauge("cdg.channels", topo.num_channels() as u64);
    rec.gauge("cdg.bitmap_words", bits.len() as u64);
    ChannelDependencyGraph {
        skel,
        bits,
        num_deps,
    }
}

/// Build a CDG from an explicit list of paths (serial; no pair sweep).
pub fn cdg_of_paths<'a, I>(topo: &Topology, paths: I) -> ChannelDependencyGraph
where
    I: IntoIterator<Item = &'a [ChannelId]>,
{
    let skel = DependencySkeleton::new(topo);
    let mut bits = vec![0u64; skel.num_words()];
    for path in paths {
        for w in path.windows(2) {
            let Some((word, mask)) = skel.bit_of(w[0], w[1]) else {
                debug_assert!(false, "path hops {} -> {} are not adjacent", w[0], w[1]);
                continue;
            };
            bits[word] |= mask;
        }
    }
    let num_deps: u64 = bits.iter().map(|w| u64::from(w.count_ones())).sum();
    ChannelDependencyGraph {
        skel,
        bits,
        num_deps,
    }
}

/// CDG of a single-path router over every SD pair of the fabric — the same
/// route set `routing::arena` freezes into CSR (a [`ftclos_routing::PathArena`]
/// itself implements [`SinglePathRouter`], so an already-built arena can be
/// passed here directly instead of re-routing).
pub fn cdg_of_router<R>(topo: &Topology, router: &R) -> ChannelDependencyGraph
where
    R: SinglePathRouter + Sync + ?Sized,
{
    cdg_of_router_with(topo, router, &Noop)
}

/// [`cdg_of_router`] with instrumentation.
pub fn cdg_of_router_with<R, Rec>(topo: &Topology, router: &R, rec: &Rec) -> ChannelDependencyGraph
where
    R: SinglePathRouter + Sync + ?Sized,
    Rec: Recorder,
{
    build_cdg_with(
        topo,
        router.ports(),
        |pair, emit| {
            if pair.src == pair.dst {
                return;
            }
            let path = router.route(pair);
            emit(path.channels());
        },
        rec,
    )
}

/// CDG of a single-path router under faults: pairs whose (single,
/// pattern-independent) path crosses dead hardware are unroutable and
/// contribute no dependencies — faults can only *remove* CDG edges for
/// deterministic routing, never add them.
pub fn cdg_of_masked_router<R>(router: &R, view: &FaultyView) -> ChannelDependencyGraph
where
    R: SinglePathRouter + Sync + ?Sized,
{
    cdg_of_masked_router_with(router, view, &Noop)
}

/// [`cdg_of_masked_router`] with instrumentation.
pub fn cdg_of_masked_router_with<R, Rec>(
    router: &R,
    view: &FaultyView,
    rec: &Rec,
) -> ChannelDependencyGraph
where
    R: SinglePathRouter + Sync + ?Sized,
    Rec: Recorder,
{
    build_cdg_with(
        view.topology(),
        router.ports(),
        |pair, emit| {
            if pair.src == pair.dst {
                return;
            }
            let path = router.route(pair);
            if view.path_alive(path.channels()).is_ok() {
                emit(path.channels());
            }
        },
        rec,
    )
}

/// CDG of the oblivious multipath route set: every branch of every pair
/// (optionally fault-masked — pairs with no live branch contribute
/// nothing). Branches are emitted in sorted channel order so downstream
/// attribution ([`attribute_witness`]) is deterministic.
pub fn cdg_of_multipath(ft: &Ftree, view: Option<&FaultyView>) -> ChannelDependencyGraph {
    cdg_of_multipath_with(ft, view, &Noop)
}

/// [`cdg_of_multipath`] with instrumentation.
pub fn cdg_of_multipath_with<Rec: Recorder>(
    ft: &Ftree,
    view: Option<&FaultyView>,
    rec: &Rec,
) -> ChannelDependencyGraph {
    let mp = ObliviousMultipath::new(ft, SpreadPolicy::RoundRobin);
    build_cdg_with(
        ft.topology(),
        mp.ports(),
        |pair, emit| {
            if pair.src == pair.dst {
                return;
            }
            let mut branches = match view {
                None => mp.paths(pair),
                Some(v) => match mp.paths_masked(pair, v) {
                    Ok(b) => b,
                    Err(_) => return, // no live branch: the pair is unroutable
                },
            };
            branches.sort_unstable_by(|a, b| a.channels().cmp(b.channels()));
            for p in &branches {
                emit(p.channels());
            }
        },
        rec,
    )
}

/// CDG over the NONBLOCKINGADAPTIVE candidate route set. Every plan the
/// adaptive router can materialize sends each cross pair through one of its
/// live top switches, so the union of per-top branches is a superset of
/// every materializable plan's route set — acyclicity of this union proves
/// *all* plans deadlock-free at once. The candidate set coincides with the
/// masked oblivious-multipath branch set (both enumerate one up*/down* path
/// per live top); a specific materialized plan can be checked exactly with
/// [`cdg_of_assignment`].
pub fn cdg_of_adaptive(ft: &Ftree, view: Option<&FaultyView>) -> ChannelDependencyGraph {
    cdg_of_adaptive_with(ft, view, &Noop)
}

/// [`cdg_of_adaptive`] with instrumentation.
pub fn cdg_of_adaptive_with<Rec: Recorder>(
    ft: &Ftree,
    view: Option<&FaultyView>,
    rec: &Rec,
) -> ChannelDependencyGraph {
    cdg_of_multipath_with(ft, view, rec)
}

/// CDG of one concrete route assignment (e.g. a materialized adaptive
/// plan): only the assignment's own paths contribute dependencies.
pub fn cdg_of_assignment(topo: &Topology, assignment: &RouteAssignment) -> ChannelDependencyGraph {
    cdg_of_paths(topo, assignment.routes().iter().map(|(_, p)| p.channels()))
}

/// One cycle-edge of a witness, attributed back to a routed path: the
/// lowest SD pair (and, within it, the first branch in sorted channel
/// order) whose path crosses `from` immediately followed by `to`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessEdge {
    /// The depending channel.
    pub from: ChannelId,
    /// The depended-on channel.
    pub to: ChannelId,
    /// The SD pair whose path realizes the dependency.
    pub pair: SdPair,
    /// That pair's full path.
    pub path: Vec<ChannelId>,
}

/// Attribute each edge of a witness cycle to a concrete routed path, using
/// the same `paths_of` enumeration the CDG was built from. The scan is
/// sequential over ascending `(s, d)` with branches in emission order, so
/// the attribution is deterministic; it stops as soon as every edge is
/// attributed. Edges no path realizes (impossible when `witness` came from
/// a CDG built with the same `paths_of`) are omitted.
pub fn attribute_witness<F>(witness: &[ChannelId], ports: u32, paths_of: F) -> Vec<WitnessEdge>
where
    F: Fn(SdPair, &mut dyn FnMut(&[ChannelId])),
{
    let k = witness.len();
    let mut found: Vec<Option<(SdPair, Vec<ChannelId>)>> = vec![None; k];
    let mut missing = k;
    'scan: for s in 0..ports {
        for d in 0..ports {
            let pair = SdPair::new(s, d);
            paths_of(pair, &mut |path: &[ChannelId]| {
                for w in path.windows(2) {
                    for (e, miss) in found.iter_mut().enumerate() {
                        if miss.is_none() && w[0] == witness[e] && w[1] == witness[(e + 1) % k] {
                            *miss = Some((pair, path.to_vec()));
                            missing -= 1;
                        }
                    }
                }
            });
            if missing == 0 {
                break 'scan;
            }
        }
    }
    found
        .into_iter()
        .enumerate()
        .filter_map(|(e, hit)| {
            let (pair, path) = hit?;
            Some(WitnessEdge {
                from: witness[e],
                to: witness[(e + 1) % k],
                pair,
                path,
            })
        })
        .collect()
}

/// A deliberately deadlock-*prone* router: the deterministic counterexample
/// the analyzer must catch. Cross-switch traffic from bottom switch `v`
/// first climbs to top `v mod m`, descends to the *neighbor* bottom
/// `(v+1) mod r`, and — unless a stop already hosts the destination —
/// keeps walking the neighbor ring for a second bounce before finishing.
/// Each down→up bounce is a "valley" turn, and together they chain every
/// bottom switch into a 2r-channel dependency cycle for `r ≥ 3`; for
/// `r = 2` the neighbor is always the destination, every path is a plain
/// up*/down* path, and the CDG is acyclic.
///
/// The *double* bounce matters dynamically: with single-bounce paths most
/// queued packets on the cycle are one hop from their exit, and the
/// simulator's round-robin arbiters always find an escapee — statically
/// cyclic, but the credit wedge never forms. Two bounces tip the balance
/// (most heads continue around the cycle) and the witness-injection
/// scenario stalls reliably.
#[derive(Clone, Copy, Debug)]
pub struct ValleyRouter<'a> {
    ft: &'a Ftree,
}

impl<'a> ValleyRouter<'a> {
    /// Wrap a fabric.
    pub fn new(ft: &'a Ftree) -> Self {
        Self { ft }
    }
}

impl SinglePathRouter for ValleyRouter<'_> {
    fn ports(&self) -> u32 {
        (self.ft.n() * self.ft.r()) as u32
    }

    fn route(&self, pair: SdPair) -> Path {
        let ft = self.ft;
        let n = ft.n();
        if pair.src == pair.dst {
            return Path::empty();
        }
        let (v, i) = (pair.src as usize / n, pair.src as usize % n);
        let (w, j) = (pair.dst as usize / n, pair.dst as usize % n);
        let up0 = ft.leaf_up_channel(v, i);
        let down_last = ft.leaf_down_channel(w, j);
        if v == w {
            return Path::new(vec![up0, down_last]);
        }
        let t1 = v % ft.m();
        let x1 = (v + 1) % ft.r();
        if x1 == w {
            return Path::new(vec![
                up0,
                ft.up_channel(v, t1),
                ft.down_channel(t1, w),
                down_last,
            ]);
        }
        let t2 = x1 % ft.m();
        let x2 = (v + 2) % ft.r();
        if x2 == w {
            return Path::new(vec![
                up0,
                ft.up_channel(v, t1),
                ft.down_channel(t1, x1),
                ft.up_channel(x1, t2),
                ft.down_channel(t2, w),
                down_last,
            ]);
        }
        let t3 = x2 % ft.m();
        Path::new(vec![
            up0,
            ft.up_channel(v, t1),
            ft.down_channel(t1, x1),
            ft.up_channel(x1, t2),
            ft.down_channel(t2, x2),
            ft.up_channel(x2, t3),
            ft.down_channel(t3, w),
            down_last,
        ])
    }

    fn name(&self) -> &'static str {
        "valley"
    }
}

/// One router's verdict within a [`deadlock_sweep`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepEntry {
    /// Router name (as reported by the router itself).
    pub router: &'static str,
    /// The CDG cycle analysis for its full route set.
    pub analysis: CycleAnalysis,
}

/// Check every routing scheme of the fabric (Yuan deterministic when
/// `m ≥ n²`, d-mod-k, s-mod-k, oblivious multipath, and the
/// NONBLOCKINGADAPTIVE candidate set), pristine or fault-masked.
pub fn deadlock_sweep(ft: &Ftree, view: Option<&FaultyView>) -> Vec<SweepEntry> {
    deadlock_sweep_with(ft, view, &Noop)
}

/// [`deadlock_sweep`] with instrumentation (each build/check runs under the
/// `cdg.build` / `cdg.scc` spans).
pub fn deadlock_sweep_with<R: Recorder>(
    ft: &Ftree,
    view: Option<&FaultyView>,
    rec: &R,
) -> Vec<SweepEntry> {
    let topo = ft.topology();
    let mut out = Vec::new();
    let mut single = |name: &'static str, router: &(dyn SinglePathRouter + Sync)| {
        let g = match view {
            None => cdg_of_router_with(topo, router, rec),
            Some(v) => cdg_of_masked_router_with(router, v, rec),
        };
        out.push(SweepEntry {
            router: name,
            analysis: g.check_with(rec),
        });
    };
    if let Ok(yuan) = YuanDeterministic::new(ft) {
        single("yuan", &yuan);
    }
    let dmodk = DModK::new(ft);
    single("dmodk", &dmodk);
    let smodk = SModK::new(ft);
    single("smodk", &smodk);
    out.push(SweepEntry {
        router: "multipath",
        analysis: cdg_of_multipath_with(ft, view, rec).check_with(rec),
    });
    out.push(SweepEntry {
        router: "adaptive",
        analysis: cdg_of_adaptive_with(ft, view, rec).check_with(rec),
    });
    out
}

/// The distinct fault sets a churn trace visits over `[0, horizon)` — the
/// same constant-fault-interval decomposition `churn::availability` uses
/// (events at or past the horizon are ignored; a same-cycle flap nets to
/// up). The pristine set is included when the trace starts or returns
/// clean. Returned in deterministic (sorted failed-channel key) order.
pub fn unique_churn_fault_sets(events: &[ChurnEvent], horizon: u64) -> Vec<FaultSet> {
    let mut sorted: Vec<ChurnEvent> = events
        .iter()
        .copied()
        .filter(|e| e.cycle < horizon)
        .collect();
    sorted.sort_unstable();
    let mut faults = FaultSet::new();
    let mut seen: BTreeSet<Vec<ChannelId>> = BTreeSet::new();
    let mut i = 0usize;
    let mut start = 0u64;
    while start < horizon {
        while i < sorted.len() && sorted[i].cycle == start {
            faults.apply_channel(sorted[i].channel, sorted[i].transition);
            i += 1;
        }
        let end = sorted.get(i).map(|e| e.cycle).unwrap_or(horizon);
        seen.insert(faults.failed_channels().collect());
        start = end;
    }
    seen.into_iter()
        .map(|key| {
            let mut f = FaultSet::new();
            for c in key {
                f.apply_channel(c, Transition::Down);
            }
            f
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{route_all, XgftRouter, YuanRecursive};
    use ftclos_topo::{kary_ntree, RecursiveNonblocking};
    use ftclos_traffic::patterns;
    use rand::SeedableRng;

    fn analysis_of<R: SinglePathRouter + Sync>(topo: &Topology, r: &R) -> CycleAnalysis {
        cdg_of_router(topo, r).check()
    }

    #[test]
    fn yuan_dmodk_smodk_are_deadlock_free_on_ftree() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let topo = ft.topology();
        let yuan = analysis_of(topo, &YuanDeterministic::new(&ft).unwrap());
        let dmodk = analysis_of(topo, &DModK::new(&ft));
        let smodk = analysis_of(topo, &SModK::new(&ft));
        for a in [&yuan, &dmodk, &smodk] {
            assert!(a.is_free(), "{a:?}");
            assert_eq!(a.valley_turns, 0);
            assert_eq!(a.cyclic_channels, 0);
            assert!(a.num_deps > 0, "non-vacuous: some dependencies exist");
        }
        // The layering certificate agrees without running SCC.
        assert_eq!(
            cdg_of_router(topo, &DModK::new(&ft)).updown_order_certificate(),
            Ok(())
        );
    }

    #[test]
    fn multipath_and_adaptive_unions_are_deadlock_free() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let mp = cdg_of_multipath(&ft, None).check();
        assert!(mp.is_free(), "{mp:?}");
        let ad = cdg_of_adaptive(&ft, None).check();
        assert_eq!(mp, ad, "candidate sets coincide");
        // Multipath uses every top, so it dominates any single-path CDG.
        let dm = cdg_of_router(ft.topology(), &DModK::new(&ft));
        assert!(mp.num_deps >= dm.num_deps());
    }

    #[test]
    fn kary_ntree_updown_routing_is_deadlock_free() {
        let x = kary_ntree(2, 3).unwrap();
        let a = analysis_of(x.topology(), &XgftRouter::dmod(&x));
        assert!(a.is_free(), "{a:?}");
        assert_eq!(a.valley_turns, 0);
        assert_eq!(
            cdg_of_router(x.topology(), &XgftRouter::dmod(&x)).updown_order_certificate(),
            Ok(())
        );
    }

    #[test]
    fn recursive_three_level_routing_is_deadlock_free() {
        let net = RecursiveNonblocking::new(2).unwrap();
        let a = analysis_of(net.topology(), &YuanRecursive::new(&net));
        assert!(a.is_free(), "{a:?}");
        assert_eq!(a.valley_turns, 0);
    }

    #[test]
    fn valley_router_yields_the_2r_cycle() {
        let ft = Ftree::new(2, 2, 4).unwrap();
        let topo = ft.topology();
        let g = cdg_of_router(topo, &ValleyRouter::new(&ft));
        let a = g.check();
        assert!(a.valley_turns > 0, "the bounce is a valley turn");
        let witness = a
            .verdict
            .witness()
            .expect("valley routing deadlocks")
            .to_vec();
        assert_eq!(witness.len(), 2 * ft.r(), "one up+down per bottom switch");
        // Each hop of the witness is a real dependency, including closure.
        for k in 0..witness.len() {
            assert!(
                g.has_dep(witness[k], witness[(k + 1) % witness.len()]),
                "witness edge {k} missing"
            );
        }
        // The sufficient condition correctly fails on a valley turn.
        let (a_ch, b_ch) = cdg_of_router(topo, &ValleyRouter::new(&ft))
            .updown_order_certificate()
            .unwrap_err();
        assert!(topo.channel(a_ch).dst == topo.channel(b_ch).src);
    }

    #[test]
    fn valley_router_with_two_bottoms_is_free() {
        // r = 2: the neighbor bottom always hosts the destination, so every
        // path is plain up*/down* and the analyzer must NOT cry wolf.
        let ft = Ftree::new(2, 2, 2).unwrap();
        let a = cdg_of_router(ft.topology(), &ValleyRouter::new(&ft)).check();
        assert!(a.is_free(), "{a:?}");
        assert_eq!(a.valley_turns, 0);
    }

    #[test]
    fn valley_routes_are_valid_paths() {
        let ft = Ftree::new(2, 2, 4).unwrap();
        let router = ValleyRouter::new(&ft);
        let n = ft.n();
        let leaf_of = |p: u32| ft.leaf(p as usize / n, p as usize % n);
        let ports = router.ports();
        for s in 0..ports {
            for d in 0..ports {
                let p = router.route(SdPair::new(s, d));
                p.validate(ft.topology(), leaf_of(s), leaf_of(d))
                    .unwrap_or_else(|e| panic!("({s},{d}): {e}"));
            }
        }
    }

    #[test]
    fn witness_attribution_covers_every_edge() {
        let ft = Ftree::new(1, 2, 3).unwrap();
        let router = ValleyRouter::new(&ft);
        let g = cdg_of_router(ft.topology(), &router);
        let a = g.check();
        let witness = a.verdict.witness().expect("cyclic").to_vec();
        let edges = attribute_witness(&witness, router.ports(), |pair, emit| {
            if pair.src == pair.dst {
                return;
            }
            let p = router.route(pair);
            emit(p.channels());
        });
        assert_eq!(edges.len(), witness.len(), "every cycle edge attributed");
        for (k, e) in edges.iter().enumerate() {
            assert_eq!(e.from, witness[k]);
            assert_eq!(e.to, witness[(k + 1) % witness.len()]);
            let pos = e.path.iter().position(|&c| c == e.from).unwrap();
            assert_eq!(e.path[pos + 1], e.to, "path realizes the dependency");
        }
    }

    #[test]
    fn parallel_build_matches_serial_route_list() {
        let ft = Ftree::new(2, 3, 4).unwrap();
        let router = DModK::new(&ft);
        let par = cdg_of_router(ft.topology(), &router);
        // Full-mesh pair list, serially.
        let ports = router.ports();
        let mut paths = Vec::new();
        for s in 0..ports {
            for d in 0..ports {
                if s != d {
                    paths.push(router.route(SdPair::new(s, d)));
                }
            }
        }
        let ser = cdg_of_paths(ft.topology(), paths.iter().map(|p| p.channels()));
        assert_eq!(par.bits, ser.bits, "atomic union == serial union");
        assert_eq!(par.num_deps(), ser.num_deps());
    }

    #[test]
    fn faults_only_remove_dependencies() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let topo = ft.topology();
        let router = DModK::new(&ft);
        let pristine = cdg_of_router(topo, &router);
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        let view = FaultyView::new(topo, &faults);
        let masked = cdg_of_masked_router(&router, &view);
        assert!(masked.num_deps() < pristine.num_deps(), "non-vacuous");
        for (m, p) in masked.bits.iter().zip(&pristine.bits) {
            assert_eq!(m & !p, 0, "masked deps are a subset of pristine");
        }
        assert!(masked.check().is_free());
    }

    #[test]
    fn assignment_cdg_checks_a_materialized_plan() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let perm = patterns::random_full(router.ports(), &mut rng);
        let asg = route_all(&router, &perm).unwrap();
        let a = cdg_of_assignment(ft.topology(), &asg).check();
        assert!(a.is_free(), "{a:?}");
        // A single permutation uses fewer pairs than the full mesh.
        let full = cdg_of_router(ft.topology(), &router);
        assert!(a.num_deps <= full.num_deps());
    }

    #[test]
    fn sweep_proves_every_router_free_pristine_and_faulted() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let entries = deadlock_sweep(&ft, None);
        let names: Vec<_> = entries.iter().map(|e| e.router).collect();
        assert_eq!(
            names,
            ["yuan", "dmodk", "smodk", "multipath", "adaptive"],
            "m = n² fabric runs the full roster"
        );
        assert!(entries.iter().all(|e| e.analysis.is_free()));

        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(1));
        let view = FaultyView::new(ft.topology(), &faults);
        let masked = deadlock_sweep(&ft, Some(&view));
        assert!(masked.iter().all(|e| e.analysis.is_free()));
        // Dead hardware shrinks every route set.
        for (m, p) in masked.iter().zip(&entries) {
            assert!(m.analysis.num_deps < p.analysis.num_deps, "{}", m.router);
        }
    }

    #[test]
    fn sweep_skips_yuan_below_threshold() {
        let ft = Ftree::new(2, 2, 3).unwrap(); // m < n²
        let entries = deadlock_sweep(&ft, None);
        assert!(entries.iter().all(|e| e.router != "yuan"));
        assert!(entries.iter().all(|e| e.analysis.is_free()));
    }

    #[test]
    fn churn_fault_sets_dedup_and_respect_horizon() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let c0 = ft.up_channel(0, 0);
        let c1 = ft.up_channel(0, 1);
        let events = vec![
            ChurnEvent::new(100, c0, Transition::Down),
            ChurnEvent::new(200, c0, Transition::Up),
            ChurnEvent::new(300, c0, Transition::Down), // same set as cycle 100
            ChurnEvent::new(400, c1, Transition::Down),
            ChurnEvent::new(900, c1, Transition::Up), // past horizon: ignored
        ];
        let sets = unique_churn_fault_sets(&events, 800);
        // {}, {c0}, {c0, c1} — the repeat visit and the late repair dedup.
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].num_failed_channels(), 0);
        let sizes: Vec<_> = sets.iter().map(FaultSet::num_failed_channels).collect();
        assert_eq!(sizes, [0, 1, 2]);
        // Every epoch set stays deadlock-free for dmodk.
        let router = DModK::new(&ft);
        for f in &sets {
            let view = FaultyView::new(ft.topology(), f);
            assert!(cdg_of_masked_router(&router, &view).check().is_free());
        }
    }

    #[test]
    fn successor_iteration_is_sorted_and_matches_has_dep() {
        let ft = Ftree::new(2, 2, 4).unwrap();
        let g = cdg_of_router(ft.topology(), &ValleyRouter::new(&ft));
        let mut seen = 0u64;
        for a in ft.topology().channel_ids() {
            let succ: Vec<ChannelId> = g.successors(a).collect();
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            assert_eq!(succ, sorted, "successors of {a} out of order");
            for &b in &succ {
                assert!(g.has_dep(a, b));
                seen += 1;
            }
        }
        assert_eq!(seen, g.num_deps());
    }

    #[test]
    fn has_dep_rejects_non_adjacent_channels() {
        let ft = Ftree::new(2, 2, 3).unwrap();
        let g = cdg_of_router(ft.topology(), &DModK::new(&ft));
        // Two leaf-up channels never share a head/tail node.
        let a = ft.leaf_up_channel(0, 0);
        let b = ft.leaf_up_channel(1, 0);
        assert!(!g.has_dep(a, b));
    }

    #[test]
    fn witness_is_deterministic_across_rebuilds() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let w1 = cdg_of_router(ft.topology(), &ValleyRouter::new(&ft))
            .check()
            .verdict;
        let w2 = cdg_of_router(ft.topology(), &ValleyRouter::new(&ft))
            .check()
            .verdict;
        assert_eq!(w1, w2);
        assert!(!w1.is_free());
    }

    #[test]
    fn hand_built_bounce_paths_form_a_minimal_cycle() {
        // Two valley paths that feed each other through the lone top:
        // up(0)→down(1)→up(1) and up(1)→down(0)→up(0) close a 4-cycle.
        let ft = Ftree::new(1, 1, 2).unwrap();
        let topo = ft.topology();
        let (u0, u1) = (ft.up_channel(0, 0), ft.up_channel(1, 0));
        let (d0, d1) = (ft.down_channel(0, 0), ft.down_channel(0, 1));
        let p1 = [u0, d1, u1];
        let p2 = [u1, d0, u0];
        let g = cdg_of_paths(topo, [p1.as_slice(), p2.as_slice()]);
        let a = g.check();
        assert_eq!(a.cyclic_channels, 4);
        assert_eq!(a.num_deps, 4);
        assert_eq!(a.valley_turns, 2);
        let witness = a.verdict.witness().expect("cycle").to_vec();
        assert_eq!(witness.len(), 4);
        assert_eq!(witness[0], [u0, u1, d0, d1].into_iter().min().unwrap());
    }

    #[test]
    fn skeleton_orders_rows_by_channel_id() {
        let ft = Ftree::new(2, 3, 3).unwrap();
        let skel = DependencySkeleton::new(ft.topology());
        for node in 0..ft.topology().num_nodes() {
            assert!(skel.out_row(node).is_sorted());
            assert!(skel.in_row(node).is_sorted());
            for (pos, &c) in skel.out_row(node).iter().enumerate() {
                assert_eq!(skel.pos_in_out[c.index()] as usize, pos);
                assert_eq!(skel.tail[c.index()] as usize, node);
            }
        }
    }
}
