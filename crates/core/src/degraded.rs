//! Degraded-nonblocking analysis: how much of the paper's nonblocking
//! guarantee survives hardware failures.
//!
//! Three questions, in increasing strength:
//!
//! 1. **Deterministic degradation** ([`deterministic_degradation`]) — under
//!    a fault overlay, which SD pairs does a single-path deterministic
//!    routing simply lose (its one path crosses dead hardware), and does the
//!    Lemma 1 predicate still hold on the surviving pairs?
//! 2. **Adaptive degradation** ([`adaptive_degraded_verdict`]) — does the
//!    masked NONBLOCKINGADAPTIVE still route every permutation
//!    contention-free, exhaustively for tiny fabrics and by randomized sweep
//!    beyond?
//! 3. **Survivability margin** ([`max_survivable_top_failures`]) — the
//!    largest `k` such that `ftree(n+n²+k', r)` stays nonblocking under
//!    **any** `k` top-switch failures, i.e. how many spare top switches buy
//!    how much fault tolerance. Failure subsets are enumerated exhaustively
//!    while `C(m, k)` fits a budget, and sampled (adversarial candidates
//!    first, then random) beyond.

use crate::engine::LinkCensus;
use crate::verify::LinkViolation;
use ftclos_routing::{NonblockingAdaptive, PathArena, RoutingError, SinglePathRouter};
use ftclos_topo::{ChannelId, FaultSet, FaultyView, Ftree};
use ftclos_traffic::enumerate::AllPermutations;
use ftclos_traffic::{patterns, SdPair};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a single-path deterministic routing degrades under a fault overlay.
#[derive(Clone, Debug)]
pub struct DeterministicDegradation {
    /// Ordered cross-leaf pairs examined (`ports · (ports-1)`).
    pub total_pairs: usize,
    /// Pairs whose (only) path crosses dead hardware, with the first dead
    /// channel on each.
    pub unroutable: Vec<(SdPair, ChannelId)>,
    /// Lemma 1 verdict over the *surviving* pairs.
    pub lemma1: Result<(), LinkViolation>,
}

impl DeterministicDegradation {
    /// Pairs that still route.
    pub fn routable_pairs(&self) -> usize {
        self.total_pairs - self.unroutable.len()
    }

    /// Fraction of pairs lost to the faults.
    pub fn unroutable_fraction(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.unroutable.len() as f64 / self.total_pairs as f64
        }
    }

    /// True when no pair was lost *and* Lemma 1 holds on the survivors.
    pub fn fully_operational(&self) -> bool {
        self.unroutable.is_empty() && self.lemma1.is_ok()
    }
}

/// Route every ordered pair of distinct leaves through `router`, partition
/// into surviving vs unroutable under `view`, and re-run the Lemma 1 audit
/// on the survivors.
///
/// For the Theorem 3 routing the survivors always pass (a subset of a
/// Lemma 1-clean pair set is clean); the audit earns its keep on sabotaged
/// or blocking routers where faults can *mask* pre-existing violations.
///
/// Engine-backed: all paths are routed once into a [`PathArena`], the
/// surviving pairs censused into a dense [`LinkCensus`], and the violation
/// witness (lowest violating channel id) materialized from the arena's
/// pair-incidence list restricted to survivors.
/// [`deterministic_degradation_legacy`] keeps the `HashMap` census as the
/// differential oracle.
pub fn deterministic_degradation<R: SinglePathRouter + ?Sized>(
    router: &R,
    view: &FaultyView<'_>,
) -> DeterministicDegradation {
    let ports = router.ports();
    let arena = match PathArena::build(router) {
        Ok(a) => a,
        // Routers that cannot serve their own universe degrade to the
        // legacy per-pair accounting (which reports them pair by pair).
        Err(_) => return deterministic_degradation_legacy(router, view),
    };
    let mut unroutable = Vec::new();
    let mut census = LinkCensus::with_channels(arena.num_channels());
    census.begin(arena.num_channels());
    let mut total_pairs = 0usize;
    for s in 0..ports {
        for d in 0..ports {
            if s == d {
                continue;
            }
            total_pairs += 1;
            let path = arena.path(SdPair::new(s, d));
            match view.path_alive(path) {
                Ok(()) => {
                    for &c in path {
                        census.record(c, s, d);
                    }
                }
                Err(ftclos_topo::FaultError::DeadChannel { channel }) => {
                    unroutable.push((SdPair::new(s, d), channel));
                }
                Err(ftclos_topo::FaultError::DeadNode { .. }) => {
                    unreachable!("path_alive reports dead paths via their channels")
                }
            }
        }
    }
    let lemma1 = match census.first_violation() {
        None => Ok(()),
        Some(channel) => {
            // Surviving pairs crossing the violating channel, in arena order.
            let crossing: Vec<SdPair> = arena
                .sd_pairs_on(channel)
                .filter(|p| view.path_alive(arena.path(*p)).is_ok())
                .collect();
            Err(two_pair_violation(channel, &crossing)
                .expect("census over survivors saw >= 2 sources and destinations"))
        }
    };
    DeterministicDegradation {
        total_pairs,
        unroutable,
        lemma1,
    }
}

/// Two crossing pairs with distinct sources and destinations, if the list
/// admits them (it always does when it spans ≥2 sources and ≥2
/// destinations).
fn two_pair_violation(channel: ChannelId, crossing: &[SdPair]) -> Option<LinkViolation> {
    let a = *crossing.first()?;
    let b = *crossing.iter().find(|q| q.src != a.src)?;
    if b.dst != a.dst {
        return Some(LinkViolation {
            channel,
            sources: [a.src, b.src],
            destinations: [a.dst, b.dst],
        });
    }
    let t = *crossing.iter().find(|q| q.dst != a.dst)?;
    let other = if t.src != a.src { a } else { b };
    Some(LinkViolation {
        channel,
        sources: [other.src, t.src],
        destinations: [other.dst, t.dst],
    })
}

/// The original `HashMap`-census degradation audit, kept as the
/// differential oracle for [`deterministic_degradation`].
pub fn deterministic_degradation_legacy<R: SinglePathRouter + ?Sized>(
    router: &R,
    view: &FaultyView<'_>,
) -> DeterministicDegradation {
    let ports = router.ports();
    let mut unroutable = Vec::new();
    let mut census: HashMap<ChannelId, Vec<(u32, u32)>> = HashMap::new();
    let mut total_pairs = 0usize;
    for s in 0..ports {
        for d in 0..ports {
            if s == d {
                continue;
            }
            total_pairs += 1;
            let path = router.route(SdPair::new(s, d));
            match view.path_alive(path.channels()) {
                Ok(()) => {
                    for &c in path.channels() {
                        census.entry(c).or_default().push((s, d));
                    }
                }
                Err(ftclos_topo::FaultError::DeadChannel { channel }) => {
                    unroutable.push((SdPair::new(s, d), channel));
                }
                Err(ftclos_topo::FaultError::DeadNode { .. }) => {
                    unreachable!("path_alive reports dead paths via their channels")
                }
            }
        }
    }
    let mut lemma1 = Ok(());
    'outer: for (&channel, crossing) in &census {
        for (i, &(s1, d1)) in crossing.iter().enumerate() {
            for &(s2, d2) in &crossing[i + 1..] {
                if s1 != s2 && d1 != d2 {
                    lemma1 = Err(LinkViolation {
                        channel,
                        sources: [s1, s2],
                        destinations: [d1, d2],
                    });
                    break 'outer;
                }
            }
        }
    }
    DeterministicDegradation {
        total_pairs,
        unroutable,
        lemma1,
    }
}

/// Outcome of a degraded blocking sweep of the masked adaptive router.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradedVerdict {
    /// Every permutation examined routed with channel load ≤ 1.
    ContentionFree {
        /// Permutations examined.
        permutations: usize,
        /// Whether the sweep covered *all* full permutations.
        exhaustive: bool,
    },
    /// Some pair has no live path at all (dead leaf cable, or no top switch
    /// can serve it): no routing algorithm survives this fault set.
    Unroutable {
        /// Source port of the lost pair.
        src: u32,
        /// Destination port of the lost pair.
        dst: u32,
    },
    /// The Fig. 4 key discipline ran out of configurations before routing
    /// some permutation — the fabric has live tops, but not where the
    /// algorithm can use them.
    PlanExhausted {
        /// Tops the plan would have needed.
        needed: usize,
        /// Tops the fabric has.
        available: usize,
    },
    /// A permutation routed with two pairs on one channel (should be
    /// impossible for masked plans; kept as a checked invariant).
    Contention {
        /// The blocking permutation's pairs.
        pairs: Vec<SdPair>,
    },
}

impl DegradedVerdict {
    /// True for [`DegradedVerdict::ContentionFree`].
    pub fn survives(&self) -> bool {
        matches!(self, DegradedVerdict::ContentionFree { .. })
    }
}

/// Sweep permutations through the masked NONBLOCKINGADAPTIVE under `view`.
///
/// Fabrics with ≤ 6 leaves are swept exhaustively (≤ 720 permutations);
/// larger ones get `samples` random full permutations from `seed`.
///
/// # Errors
/// Propagates router construction/pattern errors other than the degradation
/// outcomes captured in the verdict.
pub fn adaptive_degraded_verdict(
    ft: &Ftree,
    view: &FaultyView<'_>,
    samples: usize,
    seed: u64,
) -> Result<DegradedVerdict, RoutingError> {
    let router = NonblockingAdaptive::new(ft)?;
    let ports = ft.num_leaves() as u32;
    let exhaustive = ports <= 6;
    let perms: Vec<_> = if exhaustive {
        AllPermutations::new(ports).collect()
    } else {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..samples)
            .map(|_| patterns::random_full(ports, &mut rng))
            .collect()
    };
    let permutations = perms.len();
    // Each permutation is judged independently; the first non-clean outcome
    // *in sweep order* is the verdict, regardless of evaluation schedule.
    let outcomes: Vec<Result<Option<DegradedVerdict>, RoutingError>> = perms
        .par_iter()
        .map(|perm| match router.route_pattern_masked(perm, view) {
            Ok(a) => {
                if a.max_channel_load() > 1 {
                    Ok(Some(DegradedVerdict::Contention {
                        pairs: perm.pairs().to_vec(),
                    }))
                } else {
                    Ok(None)
                }
            }
            Err(RoutingError::NoLivePath { src, dst }) => {
                Ok(Some(DegradedVerdict::Unroutable { src, dst }))
            }
            Err(RoutingError::NotEnoughTops { needed, available }) => {
                Ok(Some(DegradedVerdict::PlanExhausted { needed, available }))
            }
            Err(e) => Err(e),
        })
        .collect();
    for outcome in outcomes {
        if let Some(verdict) = outcome? {
            return Ok(verdict);
        }
    }
    Ok(DegradedVerdict::ContentionFree {
        permutations,
        exhaustive,
    })
}

/// Result for one failure count `k` of the survivability search.
#[derive(Clone, Debug)]
pub struct KLevel {
    /// Top switches failed simultaneously.
    pub k: usize,
    /// Failure subsets examined.
    pub subsets_checked: usize,
    /// Whether all `C(m, k)` subsets were examined.
    pub exhaustive: bool,
    /// The worst verdict across subsets (`ContentionFree` iff all passed).
    pub verdict: DegradedVerdict,
    /// The failing top-switch subset, when `verdict` is not contention-free.
    pub counterexample: Option<Vec<usize>>,
}

/// Output of [`max_survivable_top_failures`].
#[derive(Clone, Debug)]
pub struct SurvivabilityReport {
    /// Largest `k` whose every examined subset stayed contention-free
    /// (0 when even single failures break the fabric).
    pub max_k: usize,
    /// Per-`k` details, in increasing `k`, up to and including the first
    /// failing level (or `k_max`).
    pub levels: Vec<KLevel>,
}

/// Find the largest `k ≤ k_max` such that the masked adaptive routing stays
/// contention-free under **any** `k` simultaneous top-switch failures.
///
/// While `C(m, k) ≤ subset_budget` all subsets are checked (the claim is
/// then exact at that sweep depth); beyond, adversarial candidates (first
/// `k` tops, last `k` tops — the spare partition — and same-key columns)
/// plus seeded random subsets fill the budget, making the claim a
/// high-confidence estimate. Each subset is judged by
/// [`adaptive_degraded_verdict`] with `perms_per_subset` samples.
///
/// # Errors
/// Propagates router construction errors.
pub fn max_survivable_top_failures(
    ft: &Ftree,
    k_max: usize,
    perms_per_subset: usize,
    subset_budget: usize,
    seed: u64,
) -> Result<SurvivabilityReport, RoutingError> {
    let m = ft.m();
    let n = ft.n();
    let mut levels = Vec::new();
    let mut max_k = 0usize;
    for k in 1..=k_max.min(m) {
        let exhaustive = binomial(m, k).is_some_and(|c| c <= subset_budget as u128);
        let subsets: Vec<Vec<usize>> = if exhaustive {
            Combinations::new(m, k).collect()
        } else {
            sampled_subsets(m, n, k, subset_budget, seed ^ (k as u64) << 32)
        };
        let mut level = KLevel {
            k,
            subsets_checked: subsets.len(),
            exhaustive,
            verdict: DegradedVerdict::ContentionFree {
                permutations: 0,
                exhaustive: false,
            },
            counterexample: None,
        };
        let mut all_clear = true;
        let mut permutations = 0usize;
        let mut perms_exhaustive = true;
        // Subsets are independent: judge them all in parallel, then scan in
        // enumeration order so the reported counterexample and accumulated
        // permutation counts match the sequential sweep exactly.
        let verdicts: Vec<Result<DegradedVerdict, RoutingError>> = subsets
            .par_iter()
            .enumerate()
            .map(|(i, subset)| {
                let mut faults = FaultSet::new();
                for &t in subset {
                    faults.fail_switch(ft.top(t));
                }
                let view = FaultyView::new(ft.topology(), &faults);
                adaptive_degraded_verdict(
                    ft,
                    &view,
                    perms_per_subset,
                    seed ^ (k as u64) ^ ((i as u64) << 20),
                )
            })
            .collect();
        for (subset, verdict) in subsets.iter().zip(verdicts) {
            match verdict? {
                DegradedVerdict::ContentionFree {
                    permutations: p,
                    exhaustive: e,
                } => {
                    permutations += p;
                    perms_exhaustive &= e;
                }
                other => {
                    level.verdict = other;
                    level.counterexample = Some(subset.clone());
                    all_clear = false;
                    break;
                }
            }
        }
        if all_clear {
            level.verdict = DegradedVerdict::ContentionFree {
                permutations,
                exhaustive: exhaustive && perms_exhaustive,
            };
            max_k = k;
            levels.push(level);
        } else {
            levels.push(level);
            break;
        }
    }
    Ok(SurvivabilityReport { max_k, levels })
}

/// `C(m, k)`, or `None` on overflow (treated as "larger than any budget").
fn binomial(m: usize, k: usize) -> Option<u128> {
    if k > m {
        return Some(0);
    }
    let k = k.min(m - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul((m - i) as u128)?;
        acc /= (i + 1) as u128;
    }
    Some(acc)
}

/// Lexicographic `k`-combinations of `0..m`.
struct Combinations {
    m: usize,
    state: Option<Vec<usize>>,
}

impl Combinations {
    fn new(m: usize, k: usize) -> Self {
        let state = (k <= m).then(|| (0..k).collect());
        Self { m, state }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.state.clone()?;
        let k = current.len();
        // Advance: find the rightmost index that can still move up.
        let next = {
            let mut s = current.clone();
            let mut i = k;
            loop {
                if i == 0 {
                    break None;
                }
                i -= 1;
                if s[i] < self.m - (k - i) {
                    s[i] += 1;
                    for j in i + 1..k {
                        s[j] = s[j - 1] + 1;
                    }
                    break Some(s);
                }
            }
        };
        self.state = next;
        Some(current)
    }
}

/// Adversarial + random failure subsets when exhaustive enumeration is too
/// expensive: the first `k` tops (leading configuration), the last `k`
/// (spare partitions), each same-key column prefix, then seeded random
/// draws up to `budget`.
fn sampled_subsets(m: usize, n: usize, k: usize, budget: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut subsets: Vec<Vec<usize>> = Vec::new();
    subsets.push((0..k).collect());
    subsets.push((m - k..m).collect());
    if n > 0 {
        for key in 0..n.min(m) {
            let column: Vec<usize> = (0..m).filter(|t| t % n == key).take(k).collect();
            if column.len() == k && !subsets.contains(&column) {
                subsets.push(column);
            }
        }
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all: Vec<usize> = (0..m).collect();
    while subsets.len() < budget {
        all.shuffle(&mut rng);
        let mut pick: Vec<usize> = all[..k].to_vec();
        pick.sort_unstable();
        if !subsets.contains(&pick) {
            subsets.push(pick);
        }
    }
    subsets.truncate(budget);
    subsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{DModK, YuanDeterministic};

    #[test]
    fn combinations_enumerate_exactly() {
        let all: Vec<_> = Combinations::new(5, 2).collect();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0], vec![0, 1]);
        assert_eq!(all[9], vec![3, 4]);
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(12, 1), Some(12));
        assert_eq!(Combinations::new(3, 4).count(), 0);
    }

    #[test]
    fn pristine_deterministic_audit_is_clean() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let view = FaultyView::pristine(ft.topology());
        let deg = deterministic_degradation(&yuan, &view);
        assert!(deg.fully_operational());
        assert_eq!(deg.total_pairs, 90);
    }

    #[test]
    fn yuan_loses_pinned_pairs_at_first_top_failure() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let yuan = YuanDeterministic::new(&ft).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        let view = FaultyView::new(ft.topology(), &faults);
        let deg = deterministic_degradation(&yuan, &view);
        // Top (0,0) carries exactly the r(r-1) = 20 cross pairs with i=j=0.
        assert_eq!(deg.unroutable.len(), 20);
        assert!(
            deg.lemma1.is_ok(),
            "survivors of a clean routing stay clean"
        );
        assert!(!deg.fully_operational());
    }

    #[test]
    fn blocking_router_keeps_violation_under_light_faults() {
        // d-mod-k on m < n² violates Lemma 1; failing one unrelated leaf
        // cable must not hide that.
        let ft = Ftree::new(2, 2, 5).unwrap();
        let dmodk = DModK::new(&ft);
        let mut faults = FaultSet::new();
        faults.fail_channel(ft.leaf_down_channel(4, 1));
        let view = FaultyView::new(ft.topology(), &faults);
        let deg = deterministic_degradation(&dmodk, &view);
        assert!(deg.lemma1.is_err());
        assert!(!deg.unroutable.is_empty());
    }

    #[test]
    fn adaptive_verdict_contention_free_with_spares() {
        let ft = Ftree::new(3, 12, 9).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(4));
        let view = FaultyView::new(ft.topology(), &faults);
        let v = adaptive_degraded_verdict(&ft, &view, 8, 11).unwrap();
        assert!(v.survives(), "{v:?}");
    }

    #[test]
    fn adaptive_verdict_unroutable_on_dead_leaf_cable() {
        let ft = Ftree::new(3, 12, 9).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_link(ft.topology(), ft.leaf_up_channel(2, 1));
        let view = FaultyView::new(ft.topology(), &faults);
        let v = adaptive_degraded_verdict(&ft, &view, 4, 3).unwrap();
        assert!(matches!(v, DegradedVerdict::Unroutable { .. }), "{v:?}");
    }

    #[test]
    fn survivability_margin_at_least_one_with_spare_partition() {
        // ftree(3+12, 9): 12 = n² + 3 tops; the spare partition must absorb
        // any single top failure. C(12, 1) = 12 subsets, exhaustive.
        let ft = Ftree::new(3, 12, 9).unwrap();
        let rep = max_survivable_top_failures(&ft, 1, 5, 64, 2024).unwrap();
        assert_eq!(rep.max_k, 1, "{:?}", rep.levels);
        assert!(rep.levels[0].exhaustive);
        assert_eq!(rep.levels[0].subsets_checked, 12);
    }

    #[test]
    fn survivability_margin_is_bounded_without_spares() {
        // ftree(2+6, 4): c = 2, configuration width (c+1)·n = 6 = m — no
        // second configuration fits. Five simultaneous failures leave a
        // single top switch, which cannot carry two cross pairs from one
        // switch, so the margin is strictly below 5 and the search reports
        // the failing level with its counterexample subset.
        let ft = Ftree::new(2, 6, 4).unwrap();
        let rep = max_survivable_top_failures(&ft, 5, 12, 64, 7).unwrap();
        assert!(rep.max_k < 5, "{:?}", rep.levels);
        let level = rep.levels.last().unwrap();
        assert!(level.counterexample.is_some());
        assert!(!level.verdict.survives());
    }

    #[test]
    fn degradation_engine_matches_legacy_oracle() {
        // Blocking, clean, and faulted-clean cases; verdicts must agree and
        // any violation witness must be genuine (the legacy HashMap census
        // iterates in arbitrary order, so only validity is comparable).
        type DeadLeafDown = &'static [(u32, u32)];
        let cases: [(u32, u32, u32, DeadLeafDown); 3] =
            [(2, 2, 5, &[(4, 1)]), (2, 4, 5, &[]), (2, 4, 5, &[(1, 0)])];
        for (n, m, r, dead_leaf_down) in cases {
            let ft = Ftree::new(n as usize, m as usize, r as usize).unwrap();
            let mut faults = FaultSet::new();
            for &(leaf, port) in dead_leaf_down {
                faults.fail_channel(ft.leaf_down_channel(leaf as usize, port as usize));
            }
            let view = FaultyView::new(ft.topology(), &faults);
            let dmodk = DModK::new(&ft);
            let new = deterministic_degradation(&dmodk, &view);
            let old = deterministic_degradation_legacy(&dmodk, &view);
            assert_eq!(new.total_pairs, old.total_pairs);
            assert_eq!(new.unroutable, old.unroutable, "ftree({n}+{m},{r})");
            assert_eq!(new.lemma1.is_ok(), old.lemma1.is_ok(), "ftree({n}+{m},{r})");
            for v in [&new.lemma1, &old.lemma1]
                .into_iter()
                .filter_map(|l| l.as_ref().err())
            {
                assert_ne!(v.sources[0], v.sources[1]);
                assert_ne!(v.destinations[0], v.destinations[1]);
                for i in 0..2 {
                    let pair = SdPair::new(v.sources[i], v.destinations[i]);
                    let path = dmodk.route(pair);
                    assert!(path.channels().contains(&v.channel), "{v:?}");
                    assert!(view.path_alive(path.channels()).is_ok(), "{v:?}");
                }
            }
        }
    }

    #[test]
    fn sampled_subsets_respect_budget_and_size() {
        let subsets = sampled_subsets(20, 4, 3, 10, 99);
        assert_eq!(subsets.len(), 10);
        for s in &subsets {
            assert_eq!(s.len(), 3);
            assert!(s.iter().all(|&t| t < 20));
            let mut d = s.clone();
            d.dedup();
            assert_eq!(d.len(), 3);
        }
    }
}
