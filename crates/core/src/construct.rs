//! Bundled nonblocking fabrics: topology + routing, self-verifying.

use ftclos_routing::{route_all, RouteAssignment, RoutingError, YuanDeterministic, YuanRecursive};
use ftclos_topo::{Ftree, RecursiveNonblocking, TopoError};
use ftclos_traffic::Permutation;

/// Errors from fabric construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstructError {
    /// Topology-level failure.
    Topo(TopoError),
    /// Routing-level failure.
    Routing(RoutingError),
}

impl std::fmt::Display for ConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstructError::Topo(e) => write!(f, "topology: {e}"),
            ConstructError::Routing(e) => write!(f, "routing: {e}"),
        }
    }
}

impl std::error::Error for ConstructError {}

impl From<TopoError> for ConstructError {
    fn from(e: TopoError) -> Self {
        ConstructError::Topo(e)
    }
}

impl From<RoutingError> for ConstructError {
    fn from(e: RoutingError) -> Self {
        ConstructError::Routing(e)
    }
}

/// The paper's two-level nonblocking fabric: `ftree(n+n², r)` with the
/// Theorem 3 routing baked in.
///
/// By Theorems 2-3 this is the *cheapest possible* nonblocking folded-Clos
/// under single-path deterministic routing (in the sensible regime
/// `r >= 2n+1`).
#[derive(Clone, Debug)]
pub struct NonblockingFtree {
    ftree: Ftree,
}

impl NonblockingFtree {
    /// Build `ftree(n + n², r)`.
    pub fn new(n: usize, r: usize) -> Result<Self, ConstructError> {
        let ftree = Ftree::new(n, n * n, r)?;
        // Constructor-time sanity: the router must accept the shape.
        let _ = YuanDeterministic::new(&ftree)?;
        Ok(Self { ftree })
    }

    /// The Table I variant built from same-size switches: `r = n + n²`, so
    /// every switch has `n + n²` ports.
    pub fn same_radix(n: usize) -> Result<Self, ConstructError> {
        Self::new(n, n + n * n)
    }

    /// Leaves per bottom switch.
    pub fn n(&self) -> usize {
        self.ftree.n()
    }

    /// Bottom switches.
    pub fn r(&self) -> usize {
        self.ftree.r()
    }

    /// Port (leaf) count.
    pub fn ports(&self) -> usize {
        self.ftree.num_leaves()
    }

    /// Switch count (`r + n²`).
    pub fn switches(&self) -> usize {
        self.ftree.num_switches()
    }

    /// The underlying `ftree(n+n², r)`.
    pub fn ftree(&self) -> &Ftree {
        &self.ftree
    }

    /// The Theorem 3 router.
    pub fn router(&self) -> YuanDeterministic<'_> {
        YuanDeterministic::new(&self.ftree).expect("validated in constructor")
    }

    /// Route a permutation (always contention-free; Theorem 3).
    pub fn route(&self, perm: &Permutation) -> Result<RouteAssignment, RoutingError> {
        route_all(&self.router(), perm)
    }

    /// Whether the paper's cost-effectiveness regime `r >= 2n+1` holds.
    pub fn in_large_top_regime(&self) -> bool {
        self.ftree.large_top_regime()
    }
}

/// The recursive three-level nonblocking fabric (paper Discussion section).
#[derive(Clone, Debug)]
pub struct NonblockingThreeLevel {
    net: RecursiveNonblocking,
}

impl NonblockingThreeLevel {
    /// Build the three-level network for `n`.
    pub fn new(n: usize) -> Result<Self, ConstructError> {
        Ok(Self {
            net: RecursiveNonblocking::new(n)?,
        })
    }

    /// The construction parameter.
    pub fn n(&self) -> usize {
        self.net.n()
    }

    /// Port count: `n⁴ + n³`.
    pub fn ports(&self) -> usize {
        self.net.num_leaves()
    }

    /// Physical switch count: `2n⁴ + 2n³ + n²`.
    pub fn switches(&self) -> usize {
        self.net.num_switches()
    }

    /// Uniform switch radix: `n + n²`.
    pub fn switch_radix(&self) -> usize {
        self.net.switch_radix()
    }

    /// The underlying physical network.
    pub fn network(&self) -> &RecursiveNonblocking {
        &self.net
    }

    /// The composed Theorem 3 router.
    pub fn router(&self) -> YuanRecursive<'_> {
        YuanRecursive::new(&self.net)
    }

    /// Route a permutation (always contention-free; paper's induction).
    pub fn route(&self, perm: &Permutation) -> Result<RouteAssignment, RoutingError> {
        route_all(&self.router(), perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_nonblocking_deterministic;
    use ftclos_traffic::patterns;
    use rand::SeedableRng;

    #[test]
    fn two_level_constructor_shapes() {
        let f = NonblockingFtree::new(2, 5).unwrap();
        assert_eq!(f.ports(), 10);
        assert_eq!(f.switches(), 9);
        assert!(f.in_large_top_regime());
        assert!(NonblockingFtree::new(0, 5).is_err());
    }

    #[test]
    fn same_radix_matches_table1_shape() {
        // n = 4: 20-port switches, 80 ports, 36 switches (Table I row 1).
        let f = NonblockingFtree::same_radix(4).unwrap();
        assert_eq!(f.ports(), 80);
        assert_eq!(f.switches(), 36);
        assert_eq!(f.ftree().n() + f.ftree().m(), 20);
        assert_eq!(f.ftree().r(), 20);
    }

    #[test]
    fn two_level_is_nonblocking_by_audit() {
        let f = NonblockingFtree::new(2, 6).unwrap();
        assert!(is_nonblocking_deterministic(&f.router()));
    }

    #[test]
    fn two_level_routes_random_permutations() {
        let f = NonblockingFtree::new(3, 8).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            let perm = patterns::random_full(f.ports() as u32, &mut rng);
            assert!(f.route(&perm).unwrap().max_channel_load() <= 1);
        }
    }

    #[test]
    fn three_level_counts_and_routing() {
        let f = NonblockingThreeLevel::new(2).unwrap();
        assert_eq!(f.ports(), 24);
        assert_eq!(f.switches(), 52);
        assert_eq!(f.switch_radix(), 6);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        for _ in 0..10 {
            let perm = patterns::random_full(24, &mut rng);
            assert!(f.route(&perm).unwrap().max_channel_load() <= 1);
        }
    }

    #[test]
    fn three_level_audit() {
        let f = NonblockingThreeLevel::new(2).unwrap();
        assert!(is_nonblocking_deterministic(&f.router()));
    }
}
