//! Lemma 2: how many SD pairs can one top-level switch route?
//!
//! Setting: the `ftree(n+1, r)` subgraph (paper Fig. 2) — all `r` bottom
//! switches under a single root. A set `S` of distinct cross-switch SD pairs
//! is *routable through the root* if every uplink `v → root` and every
//! downlink `root → w` carries pairs that share one source or share one
//! destination.
//!
//! The paper proves `|S| <= r(r-1)` when `r >= 2n+1` and `|S| <= 2nr` when
//! `r <= 2n+1`. This module provides the bound, the explicit type-(3)
//! construction reaching `r(r-1)`, a routability checker, a greedy
//! maximizer, and an exact solver (mode enumeration) for small shapes so
//! the bound can be validated empirically (experiment E5).

use ftclos_traffic::SdPair;

/// The Lemma 2 upper bound for the number of SD pairs routable through one
/// top-level switch of `ftree(n+m, r)`.
pub fn lemma2_bound(n: usize, r: usize) -> usize {
    if r > 2 * n {
        r * (r - 1)
    } else {
        2 * n * r
    }
}

/// The type-(3) construction: one source and one destination per switch —
/// pairs `(v, 0) → (w, 0)` for all `v != w`. Exactly `r(r-1)` pairs, always
/// routable (each uplink has one source, each downlink one destination).
pub fn type3_construction(n: usize, r: usize) -> Vec<SdPair> {
    let mut out = Vec::with_capacity(r * (r - 1));
    for v in 0..r {
        for w in 0..r {
            if v != w {
                out.push(SdPair::new((v * n) as u32, (w * n) as u32));
            }
        }
    }
    out
}

/// Is `pairs` routable through a single root per the Lemma 2 link rules?
/// Pairs must be distinct and cross-switch; returns `false` otherwise.
pub fn is_routable_through_root(n: usize, r: usize, pairs: &[SdPair]) -> bool {
    let mut seen = std::collections::HashSet::with_capacity(pairs.len());
    // Per source switch: distinct sources/destinations on the uplink;
    // per destination switch: the same for the downlink.
    let mut up: Vec<(Vec<u32>, Vec<u32>)> = vec![(vec![], vec![]); r];
    let mut down: Vec<(Vec<u32>, Vec<u32>)> = vec![(vec![], vec![]); r];
    for &p in pairs {
        let (v, w) = ((p.src as usize) / n, (p.dst as usize) / n);
        if v >= r || w >= r || v == w || !seen.insert(p) {
            return false;
        }
        let u = &mut up[v];
        if !u.0.contains(&p.src) {
            u.0.push(p.src);
        }
        if !u.1.contains(&p.dst) {
            u.1.push(p.dst);
        }
        let d = &mut down[w];
        if !d.0.contains(&p.src) {
            d.0.push(p.src);
        }
        if !d.1.contains(&p.dst) {
            d.1.push(p.dst);
        }
    }
    up.iter()
        .chain(down.iter())
        .all(|(srcs, dsts)| srcs.len() <= 1 || dsts.len() <= 1)
}

/// Greedy maximizer: scan all cross-switch pairs in lexicographic order,
/// keeping each pair that preserves routability. Lower-bounds the true
/// maximum; by construction it is at least `r(r-1)` is **not** guaranteed,
/// so callers comparing with the bound should also consult
/// [`type3_construction`].
pub fn greedy_max(n: usize, r: usize) -> Vec<SdPair> {
    // Incremental state mirrors `is_routable_through_root`.
    let mut up: Vec<(Vec<u32>, Vec<u32>)> = vec![(vec![], vec![]); r];
    let mut down: Vec<(Vec<u32>, Vec<u32>)> = vec![(vec![], vec![]); r];
    let ok = |slot: &(Vec<u32>, Vec<u32>), s: u32, d: u32| {
        let mut srcs = slot.0.len() + usize::from(!slot.0.contains(&s));
        let mut dsts = slot.1.len() + usize::from(!slot.1.contains(&d));
        if slot.0.contains(&s) {
            srcs = slot.0.len();
        }
        if slot.1.contains(&d) {
            dsts = slot.1.len();
        }
        srcs <= 1 || dsts <= 1
    };
    let mut out = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for v in 0..r {
        for k in 0..n {
            for w in 0..r {
                if v == w {
                    continue;
                }
                for l in 0..n {
                    let s = (v * n + k) as u32;
                    let d = (w * n + l) as u32;
                    if ok(&up[v], s, d) && ok(&down[w], s, d) {
                        if !up[v].0.contains(&s) {
                            up[v].0.push(s);
                        }
                        if !up[v].1.contains(&d) {
                            up[v].1.push(d);
                        }
                        if !down[w].0.contains(&s) {
                            down[w].0.push(s);
                        }
                        if !down[w].1.contains(&d) {
                            down[w].1.push(d);
                        }
                        out.push(SdPair::new(s, d));
                    }
                }
            }
        }
    }
    out
}

/// Exact maximum via mode enumeration.
///
/// Every uplink's legal traffic is described by a *mode*: `OneSrc(k)` (all
/// pairs from source leaf `(v,k)`) or `OneDst(d)` (all pairs to global leaf
/// `d`); downlinks symmetrically. Given modes on all `2r` links, the
/// maximum pair count factorizes per (source switch, destination switch)
/// cell, and for fixed destination modes the best source mode of each switch
/// is independent — so the search is `(rn)^r · O(r²n)` instead of doubly
/// exponential. Returns `None` when that cost exceeds `budget` operations.
pub fn exact_max(n: usize, r: usize, budget: u128) -> Option<usize> {
    let dst_mode_count = n + (r - 1) * n; // OneDst(l): n; OneSrc(s not in w): (r-1)n
    let states = (dst_mode_count as u128).checked_pow(r as u32)?;
    let per_state = (r * (n + (r - 1) * n) * r) as u128;
    if states.checked_mul(per_state)? > budget {
        return None;
    }

    // Destination mode encoding for switch w: 0..n => OneDst(w*n + code);
    // n..  => OneSrc(leaf), where leaf skips switch w's block.
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        OneSrcLeaf(u32),
        OneDstLeaf(u32),
    }
    let decode_dst = |w: usize, code: usize| -> Mode {
        if code < n {
            Mode::OneDstLeaf((w * n + code) as u32)
        } else {
            let mut idx = code - n;
            // Map to a leaf outside switch w.
            let before = w * n;
            if idx < before {
                Mode::OneSrcLeaf(idx as u32)
            } else {
                idx += n; // skip w's block
                Mode::OneSrcLeaf(idx as u32)
            }
        }
    };
    let count = |v: usize, w: usize, ms: Mode, md: Mode| -> usize {
        if v == w {
            return 0;
        }
        match (ms, md) {
            (Mode::OneSrcLeaf(_), Mode::OneDstLeaf(_)) => 1,
            (Mode::OneSrcLeaf(k), Mode::OneSrcLeaf(s)) => {
                if s == k {
                    n
                } else {
                    0
                }
            }
            (Mode::OneDstLeaf(d), Mode::OneDstLeaf(l)) => {
                if d == l {
                    n
                } else {
                    0
                }
            }
            (Mode::OneDstLeaf(d), Mode::OneSrcLeaf(s)) => {
                usize::from((d as usize) / n == w && (s as usize) / n == v)
            }
        }
    };
    // Source mode candidates for switch v.
    let src_modes = |v: usize| -> Vec<Mode> {
        let mut out = Vec::with_capacity(n + (r - 1) * n);
        for k in 0..n {
            out.push(Mode::OneSrcLeaf((v * n + k) as u32));
        }
        for leaf in 0..(r * n) {
            if leaf / n != v {
                out.push(Mode::OneDstLeaf(leaf as u32));
            }
        }
        out
    };
    let src_mode_sets: Vec<Vec<Mode>> = (0..r).map(src_modes).collect();

    let mut best = 0usize;
    let mut state = vec![0usize; r];
    loop {
        // Decode destination modes.
        let md: Vec<Mode> = (0..r).map(|w| decode_dst(w, state[w])).collect();
        let mut total = 0usize;
        for (v, modes) in src_mode_sets.iter().enumerate() {
            let mut best_v = 0usize;
            for &ms in modes {
                let mut sum = 0usize;
                for (w, &mode_d) in md.iter().enumerate() {
                    sum += count(v, w, ms, mode_d);
                }
                best_v = best_v.max(sum);
            }
            total += best_v;
        }
        best = best.max(total);

        // Next state (odometer).
        let mut i = 0;
        loop {
            if i == r {
                return Some(best);
            }
            state[i] += 1;
            if state[i] < dst_mode_count {
                break;
            }
            state[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_regimes_agree_at_crossover() {
        // r = 2n+1: both formulas coincide.
        for n in 1..6usize {
            let r = 2 * n + 1;
            assert_eq!(r * (r - 1), 2 * n * r);
            assert_eq!(lemma2_bound(n, r), r * (r - 1));
        }
        assert_eq!(lemma2_bound(2, 6), 30); // large regime
        assert_eq!(lemma2_bound(2, 4), 16); // small regime: 2*2*4
    }

    #[test]
    fn type3_is_routable_and_meets_bound() {
        for (n, r) in [(1, 4), (2, 5), (2, 6), (3, 7), (3, 8)] {
            let pairs = type3_construction(n, r);
            assert_eq!(pairs.len(), r * (r - 1));
            assert!(is_routable_through_root(n, r, &pairs), "n={n} r={r}");
            if r > 2 * n {
                assert_eq!(pairs.len(), lemma2_bound(n, r), "tight in large regime");
            }
        }
    }

    #[test]
    fn routability_checker_rejects_violations() {
        let n = 2;
        let r = 3;
        // Two sources in switch 0 to two different destinations in
        // different switches: uplink has 2 sources and 2 dests.
        let bad = vec![SdPair::new(0, 2), SdPair::new(1, 4)];
        assert!(!is_routable_through_root(n, r, &bad));
        // Same-switch pair is invalid input.
        assert!(!is_routable_through_root(n, r, &[SdPair::new(0, 1)]));
        // Duplicate pair rejected.
        assert!(!is_routable_through_root(
            n,
            r,
            &[SdPair::new(0, 2), SdPair::new(0, 2)]
        ));
        // Two sources to ONE destination is fine (type 1).
        assert!(is_routable_through_root(
            n,
            r,
            &[SdPair::new(0, 2), SdPair::new(1, 2)]
        ));
    }

    #[test]
    fn greedy_never_exceeds_bound() {
        for (n, r) in [(1, 3), (2, 3), (2, 5), (2, 7), (3, 4), (3, 7), (4, 9)] {
            let pairs = greedy_max(n, r);
            assert!(is_routable_through_root(n, r, &pairs));
            assert!(
                pairs.len() <= lemma2_bound(n, r),
                "n={n} r={r}: greedy {} > bound {}",
                pairs.len(),
                lemma2_bound(n, r)
            );
        }
    }

    #[test]
    fn exact_never_exceeds_bound_and_reaches_type3() {
        for (n, r) in [(1, 3), (1, 4), (2, 3), (2, 4), (3, 3)] {
            let exact = exact_max(n, r, 200_000_000).expect("within budget");
            assert!(
                exact <= lemma2_bound(n, r),
                "n={n} r={r}: exact {exact} > bound {}",
                lemma2_bound(n, r)
            );
            assert!(
                exact >= r * (r - 1),
                "n={n} r={r}: exact {exact} below type-3 construction"
            );
        }
    }

    #[test]
    fn exact_matches_bound_in_large_regime() {
        // n=1: every r is in the large regime; exact == r(r-1).
        for r in 3..6usize {
            assert_eq!(exact_max(1, r, 200_000_000).unwrap(), r * (r - 1));
        }
        // n=2, r=5 = 2n+1 exactly: bound = 20.
        let e = exact_max(2, 5, 2_000_000_000).unwrap();
        assert!(e <= 20);
        assert!(e >= 20, "construction reaches r(r-1) = 2nr here");
    }

    #[test]
    fn budget_guard() {
        assert_eq!(exact_max(3, 10, 1_000), None);
    }
}
