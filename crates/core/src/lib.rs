//! # ftclos-core — nonblocking folded-Clos networks as a library
//!
//! The paper's contribution, executable:
//!
//! * [`verify`] — the Lemma 1 machinery: link audits (`one source or one
//!   destination` per channel), contention detection, and the exact
//!   nonblocking decision procedure for single-path deterministic routing.
//! * [`engine`] — the arena-backed contention engine: all SD paths routed
//!   once into CSR storage, dense epoch-stamped link censuses, and the
//!   per-channel pair-incidence reformulation that collapses the `O(p⁴)`
//!   two-pair sweep into a parallel channel scan.
//! * [`search`] — blocking-permutation search: complete two-pair enumeration
//!   for deterministic routers (Lemma 1 reduces blocking to two-pair
//!   patterns, decided via the engine with the legacy loop kept as oracle),
//!   exhaustive permutation sweeps for tiny fabrics, randomized sweeps and
//!   blocking-fraction estimation (rayon-parallel) for everything else.
//! * [`lemma2`] — the Lemma 2 counting problem: the maximum number of SD
//!   pairs routable through one top-level switch, with an exact mode-based
//!   solver for small fabrics, an explicit `r(r-1)` construction, and the
//!   paper's bounds.
//! * [`construct`] — bundled nonblocking fabrics: `ftree(n+n², r)` with the
//!   Theorem 3 routing and the recursive three-level network, both
//!   self-verifying.
//! * [`design`] — the Table I cost calculator: given a switch radix, the
//!   largest nonblocking fabric (ours) vs the rearrangeable m-port n-tree.
//! * [`flow`] — flow-level throughput estimates from link loads.
//!
//! ```
//! use ftclos_core::construct::NonblockingFtree;
//! use ftclos_traffic::patterns;
//! use rand::SeedableRng;
//!
//! let fabric = NonblockingFtree::new(2, 5).unwrap(); // ftree(2+4, 5)
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let perm = patterns::random_full(fabric.ports() as u32, &mut rng);
//! let assignment = fabric.route(&perm).unwrap();
//! assert!(assignment.max_channel_load() <= 1); // nonblocking
//! ```

pub mod campaign;
pub mod cdg;
pub mod churn;
pub mod circuit;
pub mod construct;
pub mod degraded;
pub mod design;
pub mod engine;
pub mod flow;
pub mod lemma2;
pub mod search;
pub mod verify;
pub mod wide_sense;

pub use campaign::{
    cable_universe, certify_exhaustive, certify_exhaustive_with, run_randomized,
    run_randomized_with, shrink, top_switch_universe, AdaptiveRoutability, ArenaRoutability,
    CampaignConfig, CampaignError, CampaignProperty, CampaignReport, Certificate, Criticality,
    DeadlockFreedom, FaultElement, FaultVector, Judgement, Killer, KillerRecord, NonblockingMargin,
    Shrunk,
};
pub use cdg::{
    attribute_witness, build_cdg, cdg_of_adaptive, cdg_of_assignment, cdg_of_masked_router,
    cdg_of_multipath, cdg_of_paths, cdg_of_router, deadlock_sweep, unique_churn_fault_sets,
    ChannelDependencyGraph, CycleAnalysis, DeadlockVerdict, SweepEntry, ValleyRouter, WitnessEdge,
};
pub use churn::{
    availability, min_m_for_availability, AvailabilityReport, ChurnEvent, EpochVerdict,
};
pub use circuit::{CircuitClos, ConnectError, MiddlePolicy};
pub use construct::{NonblockingFtree, NonblockingThreeLevel};
pub use degraded::{
    adaptive_degraded_verdict, deterministic_degradation, deterministic_degradation_legacy,
    max_survivable_top_failures, DegradedVerdict, DeterministicDegradation, KLevel,
    SurvivabilityReport,
};
pub use design::{DesignPoint, TableOneRow};
pub use engine::{ContentionEngine, ContentionScratch, LinkCensus};
pub use search::{
    find_blocking_two_pair, find_blocking_two_pair_legacy, BlockingReport, TwoPairOutcome,
};
pub use verify::{
    nonblocking_verdict, nonblocking_verdict_legacy, pattern_contention_free, ContentionWitness,
    LinkAudit, NonblockingVerdict,
};
