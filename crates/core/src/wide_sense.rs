//! Wide-sense nonblocking decision procedure (exhaustive, tiny shapes).
//!
//! A Clos network is *wide-sense nonblocking under a routing policy* if no
//! adversarial sequence of connects and disconnects can ever reach a state
//! where some idle-input/idle-output request cannot be served **without
//! rearrangement** (paper Section II; Beneš 1965, Yang & Wang 1999 study
//! which policies achieve it and at what `m`).
//!
//! Because our [`crate::circuit::CircuitClos`] policies are deterministic,
//! the reachable state space under adversarial requests is finite and can
//! be explored exhaustively for small `(n, m, r)`: breadth-first search
//! over states (sets of `(src, dst, middle)` triples), where the adversary
//! may issue any legal connect or disconnect. The search either
//!
//! * finds a *blocking witness* — the exact request sequence that wedges
//!   the policy — or
//! * proves the policy wide-sense nonblocking for that shape by exhausting
//!   every reachable state, or
//! * gives up at a state cap (shape too large).

use crate::circuit::{CircuitClos, ConnectError, MiddlePolicy};
use std::collections::{HashSet, VecDeque};

/// One adversary move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// Request `src → dst`.
    Connect(u32, u32),
    /// Tear down the connection from `src`.
    Disconnect(u32),
}

/// Outcome of the exhaustive search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WideSense {
    /// Every reachable state can serve every legal request: the policy is
    /// wide-sense nonblocking for this shape. Contains the number of
    /// distinct reachable states explored.
    Nonblocking(usize),
    /// A wedging sequence exists; the final [`Move::Connect`] is the
    /// request the policy cannot serve.
    Blocked(Vec<Move>),
    /// State cap exceeded before the search concluded.
    Exhausted(usize),
}

/// An active circuit: `(src, dst, middle)`.
type Triple = (u32, u32, usize);

/// Canonical state key: sorted `(src, dst, middle)` triples.
fn key(c: &CircuitClos, moves_state: &[Triple]) -> Vec<Triple> {
    let _ = c;
    let mut v = moves_state.to_vec();
    v.sort_unstable();
    v
}

/// Exhaustively decide wide-sense nonblocking-ness of `policy` on
/// `Clos(n, m, r)`, visiting at most `max_states` distinct states.
pub fn wide_sense_search(
    n: usize,
    m: usize,
    r: usize,
    policy: MiddlePolicy,
    max_states: usize,
) -> WideSense {
    // A state is the set of active (src, dst, middle) triples; the
    // CircuitClos tables are a pure function of it, so snapshots restore
    // exactly via force_connect (replaying the policy would not work: its
    // choices depend on request order, which canonicalization discards).
    let ports = (r * n) as u32;
    let rebuild = |triples: &[Triple]| -> CircuitClos {
        let mut c = CircuitClos::new(n, m, r, policy);
        for &(s, d, t) in triples {
            c.force_connect(s, d, t)
                .expect("restore of a reachable state");
        }
        c
    };

    let start: Vec<Triple> = Vec::new();
    let mut seen: HashSet<Vec<Triple>> = HashSet::new();
    seen.insert(start.clone());
    // Queue holds (state triples, move log).
    let mut queue: VecDeque<(Vec<Triple>, Vec<Move>)> = VecDeque::new();
    queue.push_back((start, Vec::new()));

    while let Some((triples, log)) = queue.pop_front() {
        if seen.len() > max_states {
            return WideSense::Exhausted(seen.len());
        }
        let c = rebuild(&triples);
        let busy_in: HashSet<u32> = triples.iter().map(|t| t.0).collect();
        let busy_out: HashSet<u32> = triples.iter().map(|t| t.1).collect();

        // Adversary: every legal connect.
        for s in 0..ports {
            if busy_in.contains(&s) {
                continue;
            }
            for d in 0..ports {
                if busy_out.contains(&d) {
                    continue;
                }
                let mut c2 = c.clone();
                match c2.connect(s, d) {
                    Ok(t) => {
                        let mut next = triples.clone();
                        next.push((s, d, t));
                        let k = key(&c2, &next);
                        if seen.insert(k.clone()) {
                            let mut log2 = log.clone();
                            log2.push(Move::Connect(s, d));
                            queue.push_back((k, log2));
                        }
                    }
                    Err(ConnectError::Blocked) => {
                        let mut log2 = log;
                        log2.push(Move::Connect(s, d));
                        return WideSense::Blocked(log2);
                    }
                    Err(_) => unreachable!("ports checked idle"),
                }
            }
        }
        // Adversary: every disconnect.
        for (i, &(s, _, _)) in triples.iter().enumerate() {
            let mut next = triples.clone();
            next.remove(i);
            let c2 = rebuild(&next);
            let k = key(&c2, &next);
            if seen.insert(k.clone()) {
                let mut log2 = log.clone();
                log2.push(Move::Disconnect(s));
                queue.push_back((k, log2));
            }
        }
    }
    WideSense::Nonblocking(seen.len())
}

/// Replay a [`WideSense::Blocked`] witness and confirm the final request
/// really blocks. Returns `true` when the witness is genuine.
pub fn verify_witness(n: usize, m: usize, r: usize, policy: MiddlePolicy, moves: &[Move]) -> bool {
    let mut c = CircuitClos::new(n, m, r, policy);
    let Some((&last, prefix)) = moves.split_last() else {
        return false;
    };
    for &mv in prefix {
        match mv {
            Move::Connect(s, d) => {
                if c.connect(s, d).is_err() {
                    return false;
                }
            }
            Move::Disconnect(s) => {
                if c.disconnect(s).is_none() {
                    return false;
                }
            }
        }
    }
    match last {
        Move::Connect(s, d) => c.connect(s, d) == Err(ConnectError::Blocked),
        Move::Disconnect(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_sense_shapes_are_wide_sense() {
        // m = 2n-1: strictly nonblocking, hence wide-sense for any policy.
        for policy in [MiddlePolicy::FirstFit, MiddlePolicy::Balanced] {
            match wide_sense_search(2, 3, 2, policy, 2_000_000) {
                WideSense::Nonblocking(states) => assert!(states > 1),
                other => panic!("expected nonblocking, got {other:?}"),
            }
        }
    }

    #[test]
    fn below_rearrangeable_blocks_quickly() {
        // m = 1 < n: trivially wedgeable.
        match wide_sense_search(2, 1, 2, MiddlePolicy::FirstFit, 100_000) {
            WideSense::Blocked(moves) => {
                assert!(verify_witness(2, 1, 2, MiddlePolicy::FirstFit, &moves));
            }
            other => panic!("expected blocked, got {other:?}"),
        }
    }

    #[test]
    fn m_equals_n_is_rearrangeable_but_not_wide_sense() {
        // n = 2, m = 2, r = 3: Beneš-rearrangeable, yet the adversary can
        // wedge first-fit without rearrangement (the sequence the paper's
        // Section II hierarchy predicts). The witness must replay.
        match wide_sense_search(2, 2, 3, MiddlePolicy::FirstFit, 2_000_000) {
            WideSense::Blocked(moves) => {
                assert!(verify_witness(2, 2, 3, MiddlePolicy::FirstFit, &moves));
                // Adversary needs at least 3 prior circuits to wedge m = 2.
                assert!(moves.len() >= 3, "witness {moves:?}");
            }
            other => panic!("expected blocked, got {other:?}"),
        }
    }

    #[test]
    fn r_equals_2_small_shapes() {
        // With only two input/output switches the conflict surface is
        // smaller; check what the exhaustive search concludes for m between
        // n and 2n-1 at n = 2 (i.e. m = 2): Beneš's r = 2 packing bound
        // ceil(3n/2) = 3 says m = 2 should NOT be wide-sense.
        match wide_sense_search(2, 2, 2, MiddlePolicy::FirstFit, 2_000_000) {
            WideSense::Blocked(moves) => {
                assert!(verify_witness(2, 2, 2, MiddlePolicy::FirstFit, &moves));
            }
            WideSense::Nonblocking(_) => {
                panic!("m = n = 2 < ceil(3n/2) should be wedgeable at r = 2")
            }
            WideSense::Exhausted(s) => panic!("state cap too small: {s}"),
        }
    }

    #[test]
    fn policies_can_differ() {
        // The wide-sense property is policy-dependent (that is its point):
        // run both policies on the same shape and require each verdict to
        // be internally consistent (witness replays / exhaustive proof).
        for policy in [
            MiddlePolicy::FirstFit,
            MiddlePolicy::LastFit,
            MiddlePolicy::Balanced,
        ] {
            match wide_sense_search(2, 3, 3, policy, 4_000_000) {
                WideSense::Blocked(moves) => {
                    assert!(verify_witness(2, 3, 3, policy, &moves), "{policy:?}");
                }
                WideSense::Nonblocking(states) => assert!(states > 10, "{policy:?}"),
                WideSense::Exhausted(_) => {} // acceptable for the larger shape
            }
        }
    }
}
