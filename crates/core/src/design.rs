//! Network design calculators — the paper's Discussion section and Table I.

use serde::{Deserialize, Serialize};

/// One designed fabric: switch radix in, size and cost out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Port count of the building-block switches.
    pub radix: usize,
    /// The `n` parameter of the construction.
    pub n: usize,
    /// Fabric port (leaf) count.
    pub ports: usize,
    /// Number of switches consumed.
    pub switches: usize,
}

impl DesignPoint {
    /// Switches per fabric port (cost density; lower is cheaper).
    pub fn switches_per_port(&self) -> f64 {
        self.switches as f64 / self.ports as f64
    }
}

/// Largest `n` with `n + n² <= radix` (the biggest two-level nonblocking
/// construction realizable from `radix`-port switches).
pub fn largest_n_for_radix(radix: usize) -> usize {
    // n = floor((sqrt(4·radix + 1) - 1) / 2), computed by integer search to
    // dodge float edge cases.
    let mut n = 0usize;
    while (n + 1) + (n + 1) * (n + 1) <= radix {
        n += 1;
    }
    n
}

/// Design the paper's two-level nonblocking `ftree(n+n², n+n²)` from
/// `radix`-port switches (Table I, left half). Uses the largest feasible
/// `n`; returns `None` if even `n = 1` does not fit (radix < 2).
pub fn nonblocking_two_level(radix: usize) -> Option<DesignPoint> {
    let n = largest_n_for_radix(radix);
    if n == 0 {
        return None;
    }
    let r = n + n * n;
    Some(DesignPoint {
        radix,
        n,
        ports: r * n,
        switches: r + n * n,
    })
}

/// Design the rearrangeable `FT(radix, 2)` m-port 2-tree (Table I, right
/// half): `radix²/2` ports from `3·radix/2` switches. Requires even radix
/// ≥ 2.
pub fn mport_two_tree(radix: usize) -> Option<DesignPoint> {
    if radix < 2 || !radix.is_multiple_of(2) {
        return None;
    }
    let half = radix / 2;
    Some(DesignPoint {
        radix,
        n: half,
        ports: 2 * half * half,
        switches: 3 * half,
    })
}

/// Design the three-level nonblocking network from `radix`-port switches:
/// `n⁴ + n³` ports from `2n⁴ + 2n³ + n²` switches.
pub fn nonblocking_three_level(radix: usize) -> Option<DesignPoint> {
    let n = largest_n_for_radix(radix);
    if n == 0 {
        return None;
    }
    Some(DesignPoint {
        radix,
        n,
        ports: n.pow(4) + n.pow(3),
        switches: 2 * n.pow(4) + 2 * n.pow(3) + n.pow(2),
    })
}

/// One row of the paper's Table I: both designs for one switch radix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableOneRow {
    /// Building-block switch radix.
    pub radix: usize,
    /// Our nonblocking `ftree(n+n², n+n²)`.
    pub nonblocking: DesignPoint,
    /// The rearrangeable `FT(radix, 2)` baseline.
    pub rearrangeable: DesignPoint,
}

/// Regenerate Table I for the given switch radices (the paper uses 20, 30,
/// 42). Returns one row per radix that both constructions support.
pub fn table_one(radices: &[usize]) -> Vec<TableOneRow> {
    radices
        .iter()
        .filter_map(|&radix| {
            Some(TableOneRow {
                radix,
                nonblocking: nonblocking_two_level(radix)?,
                rearrangeable: mport_two_tree(radix)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn largest_n() {
        assert_eq!(largest_n_for_radix(1), 0);
        assert_eq!(largest_n_for_radix(2), 1);
        assert_eq!(largest_n_for_radix(5), 1);
        assert_eq!(largest_n_for_radix(6), 2);
        assert_eq!(largest_n_for_radix(19), 3);
        assert_eq!(largest_n_for_radix(20), 4);
        assert_eq!(largest_n_for_radix(30), 5);
        assert_eq!(largest_n_for_radix(42), 6);
    }

    #[test]
    fn table_one_matches_paper() {
        // Paper Table I: 20-port: 36 switches / 80 ports vs 30 / 200;
        // 30-port: 55 / 150 vs 45 / 450; 42-port: 88* / 252 vs 63 / 884*.
        let rows = table_one(&[20, 30, 42]);
        assert_eq!(rows.len(), 3);

        assert_eq!(rows[0].nonblocking.ports, 80);
        assert_eq!(rows[0].nonblocking.switches, 36);
        assert_eq!(rows[0].rearrangeable.ports, 200);
        assert_eq!(rows[0].rearrangeable.switches, 30);

        assert_eq!(rows[1].nonblocking.ports, 150);
        assert_eq!(rows[1].nonblocking.switches, 55);
        assert_eq!(rows[1].rearrangeable.ports, 450);
        assert_eq!(rows[1].rearrangeable.switches, 45);

        assert_eq!(rows[2].nonblocking.ports, 252);
        assert_eq!(rows[2].nonblocking.switches, 78);
        assert_eq!(rows[2].rearrangeable.ports, 882);
        assert_eq!(rows[2].rearrangeable.switches, 63);
        // Note: the paper's printed 42-port row says 88 switches and 884
        // ports; the formulas (2n²+n with n=6 → 78; N²/2 with N=42 → 882)
        // give 78 and 882. See EXPERIMENTS.md E1.
    }

    #[test]
    fn infeasible_radices() {
        assert!(nonblocking_two_level(1).is_none());
        assert!(mport_two_tree(7).is_none());
        assert!(mport_two_tree(0).is_none());
        assert!(nonblocking_three_level(1).is_none());
        assert!(table_one(&[1, 7]).is_empty());
    }

    #[test]
    fn three_level_scaling() {
        // n = 4 (20-port switches): 320 ports, 672 switches.
        let d = nonblocking_three_level(20).unwrap();
        assert_eq!(d.n, 4);
        assert_eq!(d.ports, 256 + 64);
        assert_eq!(d.switches, 512 + 128 + 16);
    }

    #[test]
    fn cost_density_ordering() {
        // Nonblocking costs more switches per port than rearrangeable —
        // the price of crossbar-equivalent behaviour.
        for radix in [20usize, 30, 42] {
            let nb = nonblocking_two_level(radix).unwrap();
            let ra = mport_two_tree(radix).unwrap();
            assert!(nb.switches_per_port() > ra.switches_per_port());
        }
    }
}
