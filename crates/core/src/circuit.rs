//! Classical circuit-switched Clos networks with a centralized controller
//! (paper Section II / Related Work).
//!
//! The paper's whole point is that the classical nonblocking hierarchy —
//! strict-sense (`m >= 2n-1`, Clos 1953), wide-sense (policy-dependent),
//! rearrangeable (`m >= n`, Beneš 1962) — presumes a controller that sees
//! every connection request and assigns middle switches. This module
//! implements that controller for `Clos(n, m, r)` so the classical results
//! can be exercised (and their *inapplicability* to distributed packet
//! routing made concrete: the controller is global state no fat-tree switch
//! has).
//!
//! A *connection* joins an idle input port to an idle output port through a
//! middle switch that is free on both the input-switch uplink and the
//! output-switch downlink. Policies:
//! * [`MiddlePolicy::FirstFit`] — lowest-index feasible middle (the packing
//!   strategy studied for wide-sense nonblocking-ness),
//! * [`MiddlePolicy::LastFit`] — highest-index feasible middle,
//! * [`MiddlePolicy::Balanced`] — least-used feasible middle.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Middle-switch selection policy for new connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MiddlePolicy {
    /// Lowest-index feasible middle switch (packing).
    FirstFit,
    /// Highest-index feasible middle switch.
    LastFit,
    /// Feasible middle switch currently carrying the fewest connections.
    Balanced,
}

/// Why a connection attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnectError {
    /// The input port already carries a connection.
    InputBusy,
    /// The output port already carries a connection.
    OutputBusy,
    /// No middle switch is free toward both endpoints — the network is
    /// *blocked* for this request (without rearrangement).
    Blocked,
    /// Port index out of range.
    OutOfRange,
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::InputBusy => write!(f, "input port busy"),
            ConnectError::OutputBusy => write!(f, "output port busy"),
            ConnectError::Blocked => write!(f, "no free middle switch (blocked)"),
            ConnectError::OutOfRange => write!(f, "port out of range"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// Centralized circuit switch state over `Clos(n, m, r)`.
///
/// ```
/// use ftclos_core::circuit::{CircuitClos, MiddlePolicy};
///
/// // Strict-sense shape: m = 2n - 1.
/// let mut c = CircuitClos::new(2, 3, 4, MiddlePolicy::FirstFit);
/// let middle = c.connect(0, 5).unwrap();
/// assert_eq!(middle, 0);
/// assert_eq!(c.disconnect(0), Some((5, 0)));
/// ```
#[derive(Clone, Debug)]
pub struct CircuitClos {
    n: usize,
    m: usize,
    r: usize,
    policy: MiddlePolicy,
    /// `up_used[v][t]`: input switch `v`'s link to middle `t` is carrying a
    /// connection.
    up_used: Vec<Vec<bool>>,
    /// `down_used[t][w]`: middle `t`'s link to output switch `w` in use.
    down_used: Vec<Vec<bool>>,
    /// Active connections: input port → (output port, middle).
    connections: HashMap<u32, (u32, usize)>,
    /// Output port → input port (reverse index).
    out_owner: HashMap<u32, u32>,
    /// Connections per middle switch (for the balanced policy).
    middle_load: Vec<usize>,
}

impl CircuitClos {
    /// Create an empty circuit switch for `Clos(n, m, r)`.
    pub fn new(n: usize, m: usize, r: usize, policy: MiddlePolicy) -> Self {
        Self {
            n,
            m,
            r,
            policy,
            up_used: vec![vec![false; m]; r],
            down_used: vec![vec![false; r]; m],
            connections: HashMap::new(),
            out_owner: HashMap::new(),
            middle_load: vec![0; m],
        }
    }

    /// Number of input/output ports (`r·n`).
    pub fn ports(&self) -> u32 {
        (self.r * self.n) as u32
    }

    /// Active connection count.
    pub fn active(&self) -> usize {
        self.connections.len()
    }

    /// Clos's strict-sense threshold `2n - 1` for this shape.
    pub fn strict_sense_m(&self) -> usize {
        2 * self.n - 1
    }

    /// The middles currently feasible for `(src, dst)`.
    fn feasible(&self, v: usize, w: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.m).filter(move |&t| !self.up_used[v][t] && !self.down_used[t][w])
    }

    /// Try to establish `src → dst`. Returns the middle switch used.
    pub fn connect(&mut self, src: u32, dst: u32) -> Result<usize, ConnectError> {
        if src >= self.ports() || dst >= self.ports() {
            return Err(ConnectError::OutOfRange);
        }
        if self.connections.contains_key(&src) {
            return Err(ConnectError::InputBusy);
        }
        if self.out_owner.contains_key(&dst) {
            return Err(ConnectError::OutputBusy);
        }
        let v = src as usize / self.n;
        let w = dst as usize / self.n;
        let chosen = match self.policy {
            MiddlePolicy::FirstFit => self.feasible(v, w).next(),
            MiddlePolicy::LastFit => self.feasible(v, w).last(),
            MiddlePolicy::Balanced => {
                let load = &self.middle_load;
                self.feasible(v, w).min_by_key(|&t| (load[t], t))
            }
        };
        let Some(t) = chosen else {
            return Err(ConnectError::Blocked);
        };
        self.up_used[v][t] = true;
        self.down_used[t][w] = true;
        self.middle_load[t] += 1;
        self.connections.insert(src, (dst, t));
        self.out_owner.insert(dst, src);
        Ok(t)
    }

    /// Establish `src → dst` through a *specific* middle switch, bypassing
    /// the policy. Used to restore snapshots (e.g. by the wide-sense state
    /// search) and to model externally-dictated assignments.
    pub fn force_connect(&mut self, src: u32, dst: u32, middle: usize) -> Result<(), ConnectError> {
        if src >= self.ports() || dst >= self.ports() || middle >= self.m {
            return Err(ConnectError::OutOfRange);
        }
        if self.connections.contains_key(&src) {
            return Err(ConnectError::InputBusy);
        }
        if self.out_owner.contains_key(&dst) {
            return Err(ConnectError::OutputBusy);
        }
        let v = src as usize / self.n;
        let w = dst as usize / self.n;
        if self.up_used[v][middle] || self.down_used[middle][w] {
            return Err(ConnectError::Blocked);
        }
        self.up_used[v][middle] = true;
        self.down_used[middle][w] = true;
        self.middle_load[middle] += 1;
        self.connections.insert(src, (dst, middle));
        self.out_owner.insert(dst, src);
        Ok(())
    }

    /// Tear down the connection from `src`. Returns the `(dst, middle)` it
    /// occupied, or `None` if there was none.
    pub fn disconnect(&mut self, src: u32) -> Option<(u32, usize)> {
        let (dst, t) = self.connections.remove(&src)?;
        self.out_owner.remove(&dst);
        let v = src as usize / self.n;
        let w = dst as usize / self.n;
        self.up_used[v][t] = false;
        self.down_used[t][w] = false;
        self.middle_load[t] -= 1;
        Some((dst, t))
    }

    /// Rearrangeable connect (Beneš / Paull): if the direct attempt blocks,
    /// free a middle by swapping an alternating chain of existing
    /// connections between two middles (Paull's matrix argument), then
    /// connect. Succeeds for any request whenever `m >= n` and the ports
    /// are idle.
    pub fn connect_rearranging(&mut self, src: u32, dst: u32) -> Result<usize, ConnectError> {
        match self.connect(src, dst) {
            Err(ConnectError::Blocked) => {}
            other => return other,
        }
        let v = src as usize / self.n;
        let w = dst as usize / self.n;
        // Pick a middle `a` free at v and a middle `b` free at w. Both
        // exist when m >= n because v has at most n-1 other busy uplinks
        // (src is idle) and w at most n-1 busy downlinks.
        let a = (0..self.m).find(|&t| !self.up_used[v][t]);
        let b = (0..self.m).find(|&t| !self.down_used[t][w]);
        let (Some(a), Some(b)) = (a, b) else {
            return Err(ConnectError::Blocked);
        };
        debug_assert_ne!(a, b, "else connect() would have succeeded");
        // Walk Paull's chain starting from the connection using `a` at w's
        // output switch, alternating a/b, and swap middles along the chain.
        // Collect the chain first (it is a simple path), then re-point.
        let mut chain: Vec<u32> = Vec::new(); // connection keys (src ports)
        let mut cur_switch_is_output = true;
        let mut cur_idx = w;
        let mut want = a;
        loop {
            // Find the connection using middle `want` at the current
            // switch (input side v' or output side w').
            let found = self.connections.iter().find(|(&s, &(d, t))| {
                t == want
                    && if cur_switch_is_output {
                        d as usize / self.n == cur_idx
                    } else {
                        s as usize / self.n == cur_idx
                    }
            });
            let Some((&s, &(d, _))) = found else { break };
            if chain.contains(&s) {
                break; // safety: avoid cycles (cannot happen in theory)
            }
            chain.push(s);
            // Continue from the other endpoint with the other middle.
            if cur_switch_is_output {
                cur_idx = s as usize / self.n;
                cur_switch_is_output = false;
            } else {
                cur_idx = d as usize / self.n;
                cur_switch_is_output = true;
            }
            want = if want == a { b } else { a };
        }
        // Swap a<->b along the chain: clear every old slot first, then set
        // the new ones, because consecutive chain edges share a switch and
        // an interleaved update would clobber a slot just written.
        for &s in &chain {
            let (d, t) = self.connections[&s];
            let sv = s as usize / self.n;
            let dw = d as usize / self.n;
            self.up_used[sv][t] = false;
            self.down_used[t][dw] = false;
            self.middle_load[t] -= 1;
        }
        for &s in &chain {
            let (d, t) = self.connections[&s];
            let new_t = if t == a { b } else { a };
            let sv = s as usize / self.n;
            let dw = d as usize / self.n;
            self.up_used[sv][new_t] = true;
            self.down_used[new_t][dw] = true;
            self.middle_load[new_t] += 1;
            self.connections.insert(s, (d, new_t));
        }
        // `a` is now free at both v and w.
        match self.connect(src, dst) {
            Ok(t) => Ok(t),
            Err(e) => Err(e),
        }
    }

    /// Internal consistency audit (link usage matches the connection set).
    pub fn audit(&self) -> Result<(), String> {
        let mut up = vec![vec![false; self.m]; self.r];
        let mut down = vec![vec![false; self.r]; self.m];
        let mut load = vec![0usize; self.m];
        for (&s, &(d, t)) in &self.connections {
            let v = s as usize / self.n;
            let w = d as usize / self.n;
            if std::mem::replace(&mut up[v][t], true) {
                return Err(format!("uplink {v}->{t} double-booked"));
            }
            if std::mem::replace(&mut down[t][w], true) {
                return Err(format!("downlink {t}->{w} double-booked"));
            }
            load[t] += 1;
            if self.out_owner.get(&d) != Some(&s) {
                return Err("reverse index out of sync".into());
            }
        }
        if up != self.up_used || down != self.down_used || load != self.middle_load {
            return Err("usage tables out of sync".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    #[test]
    fn basic_connect_disconnect() {
        let mut c = CircuitClos::new(2, 3, 4, MiddlePolicy::FirstFit);
        let t = c.connect(0, 5).unwrap();
        assert_eq!(t, 0, "first fit");
        assert_eq!(c.active(), 1);
        assert_eq!(c.connect(0, 6), Err(ConnectError::InputBusy));
        assert_eq!(c.connect(2, 5), Err(ConnectError::OutputBusy));
        assert_eq!(c.connect(99, 5), Err(ConnectError::OutOfRange));
        assert_eq!(c.disconnect(0), Some((5, 0)));
        assert_eq!(c.disconnect(0), None);
        c.audit().unwrap();
    }

    #[test]
    fn clos_strict_sense_never_blocks_under_churn() {
        // m = 2n-1 = 3 with n = 2: random connect/disconnect churn must
        // never block, for every policy (that is what strict-sense means).
        for policy in [
            MiddlePolicy::FirstFit,
            MiddlePolicy::LastFit,
            MiddlePolicy::Balanced,
        ] {
            let c = CircuitClos::new(2, 3, 5, MiddlePolicy::FirstFit);
            assert_eq!(c.strict_sense_m(), 3);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
            let mut c = CircuitClos::new(2, 3, 5, policy);
            for step in 0..5_000 {
                if rng.gen_bool(0.5) {
                    // Try to connect a random idle input to a random idle
                    // output.
                    let idle_in: Vec<u32> = (0..c.ports())
                        .filter(|p| !c.connections.contains_key(p))
                        .collect();
                    let idle_out: Vec<u32> = (0..c.ports())
                        .filter(|p| !c.out_owner.contains_key(p))
                        .collect();
                    if let (Some(&s), Some(&d)) =
                        (idle_in.choose(&mut rng), idle_out.choose(&mut rng))
                    {
                        let res = c.connect(s, d);
                        assert!(
                            !matches!(res, Err(ConnectError::Blocked)),
                            "{policy:?} blocked at step {step}: ({s},{d})"
                        );
                    }
                } else {
                    let busy: Vec<u32> = c.connections.keys().copied().collect();
                    if let Some(&s) = busy.choose(&mut rng) {
                        c.disconnect(s);
                    }
                }
            }
            c.audit().unwrap();
        }
    }

    #[test]
    fn below_strict_sense_can_block() {
        // n = 2, m = 2 (< 2n-1 = 3): the classic first-fit blocking state.
        // Arrange: input switch 0 busy on middle 0 only, output switch 0
        // busy on middle 1 only — their free sets are disjoint, so a fresh
        // request between their idle ports blocks.
        let mut c = CircuitClos::new(2, 2, 3, MiddlePolicy::FirstFit);
        c.connect(0, 2).unwrap(); // v0 -> m0 -> w1
        c.connect(3, 4).unwrap(); // v1 -> m0 -> w2
        c.connect(2, 1).unwrap(); // v1 -> m1 (m0 busy at v1) -> w0
                                  // Request idle port 1 (v0) -> idle port 0 (w0):
                                  // v0 free middles = {m1}; w0 free middles = {m0}; intersection ∅.
        assert_eq!(c.connect(1, 0), Err(ConnectError::Blocked));
        // Beneš: m = n = 2 is rearrangeable, so a controller willing to
        // re-point existing circuits completes the same request.
        let t = c.connect_rearranging(1, 0).unwrap();
        assert!(t < 2);
        assert_eq!(c.active(), 4);
        c.audit().unwrap();
        // At m = 2n-1 the same prefix leaves a free middle (strict sense).
        let mut c = CircuitClos::new(2, 3, 3, MiddlePolicy::FirstFit);
        c.connect(0, 2).unwrap();
        c.connect(3, 4).unwrap();
        c.connect(2, 1).unwrap();
        assert!(c.connect(1, 0).is_ok());
        c.audit().unwrap();
    }

    #[test]
    fn rearrangement_needed_below_strict_sense() {
        // n = 2, m = 2 (= n, rearrangeable; < 2n-1 = 3, not strict-sense).
        // Search random churn for a state where plain connect() blocks but
        // connect_rearranging() succeeds — the defining wide-sense gap.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut witnessed = false;
        'outer: for _ in 0..200 {
            let mut c = CircuitClos::new(2, 2, 4, MiddlePolicy::FirstFit);
            for _ in 0..200 {
                let s = rng.gen_range(0..c.ports());
                let d = rng.gen_range(0..c.ports());
                if rng.gen_bool(0.35) {
                    let busy: Vec<u32> = c.connections.keys().copied().collect();
                    if let Some(&x) = busy.first() {
                        c.disconnect(x);
                    }
                    continue;
                }
                match c.connect(s, d) {
                    Ok(_) | Err(ConnectError::InputBusy) | Err(ConnectError::OutputBusy) => {}
                    Err(ConnectError::Blocked) => {
                        // Rearrangement must succeed (Beneš: m >= n).
                        let t = c
                            .connect_rearranging(s, d)
                            .expect("Beneš guarantees success");
                        assert!(t < 2);
                        c.audit().unwrap();
                        witnessed = true;
                        break 'outer;
                    }
                    Err(ConnectError::OutOfRange) => unreachable!(),
                }
            }
        }
        assert!(
            witnessed,
            "churn should hit a blocked-but-rearrangeable state"
        );
    }

    #[test]
    fn rearranging_full_permutation_always_works_at_m_equals_n() {
        use rand::seq::SliceRandom as _;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for _ in 0..20 {
            let mut c = CircuitClos::new(3, 3, 4, MiddlePolicy::FirstFit);
            let mut dsts: Vec<u32> = (0..c.ports()).collect();
            dsts.shuffle(&mut rng);
            for (s, &d) in dsts.iter().enumerate() {
                c.connect_rearranging(s as u32, d)
                    .unwrap_or_else(|e| panic!("({s},{d}): {e}"));
            }
            assert_eq!(c.active(), c.ports() as usize);
            c.audit().unwrap();
        }
    }

    #[test]
    fn balanced_policy_spreads_load() {
        let mut c = CircuitClos::new(2, 4, 4, MiddlePolicy::Balanced);
        c.connect(0, 2).unwrap();
        c.connect(2, 4).unwrap();
        c.connect(4, 6).unwrap();
        c.connect(6, 0).unwrap();
        // Four connections from four different switches: each should get a
        // different middle under least-load.
        let mut used: Vec<usize> = c.connections.values().map(|&(_, t)| t).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 4);
        c.audit().unwrap();
    }
}
