//! The arena-backed contention engine: allocation-free Lemma 1 decisions.
//!
//! Every exact analyzer in this crate decides the same predicate — *each
//! channel carries traffic from one source or to one destination* — over the
//! `r(r-1)n²` SD paths of a single-path router. The legacy implementations
//! ([`crate::verify::LinkAudit`], the `O(p⁴)` two-pair loop) hash every
//! channel of every path into fresh `HashMap`s on every call; this module
//! replaces the hashing with three dense structures:
//!
//! * [`PathArena`] (from `ftclos-routing`) — all paths routed **once** into
//!   CSR storage, with the transposed channel → pair incidence lists;
//! * [`LinkCensus`] — a per-channel source/destination census in flat
//!   vectors stamped by a generation counter, so repeated audits reuse one
//!   buffer with zero clearing and zero hashing;
//! * [`ContentionScratch`] — the same epoch-stamp trick for per-pattern
//!   contention checks (`channel → owning pair` tables reused across
//!   patterns).
//!
//! [`ContentionEngine`] ties them together: build once per router, then ask
//! for the Lemma 1 verdict, the blocking two-pair witness, or per-channel
//! censuses — all by indexing. The legacy implementations are kept verbatim
//! as differential oracles; `tests/engine_differential.rs` pins the two
//! sides to identical verdicts across fabric shapes, routers, and fault
//! masks.

use crate::verify::{ContentionWitness, LinkViolation};
use ftclos_obs::{Noop, Recorder};
use ftclos_routing::{PathArena, RouteAssignment, RoutingError, SinglePathRouter};
use ftclos_topo::ChannelId;
use ftclos_traffic::SdPair;
use rayon::prelude::*;

/// Census entries saturate at 2 distinct endpoints: Lemma 1 only asks
/// whether a channel has *one* source or *one* destination, and a violation
/// witness needs at most two of each.
const SATURATE: u8 = 2;

/// Per-channel source/destination census in dense, epoch-stamped tables.
///
/// A generation counter replaces clearing: a channel's entry is live only
/// when its stamp equals the current epoch, so [`LinkCensus::begin`] is
/// O(1) (amortized — the stamp vector is zeroed once per `u32` wraparound,
/// i.e. effectively never) and repeated censuses over the same fabric
/// allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct LinkCensus {
    epoch: u32,
    stamp: Vec<u32>,
    /// Up to two distinct sources / destinations seen per channel.
    src: Vec<[u32; 2]>,
    dst: Vec<[u32; 2]>,
    nsrc: Vec<u8>,
    ndst: Vec<u8>,
    /// Channels touched in the current epoch, in first-touch order.
    touched: Vec<ChannelId>,
}

impl LinkCensus {
    /// An empty census sized for `num_channels` channels.
    pub fn with_channels(num_channels: usize) -> Self {
        let mut c = Self::default();
        c.grow(num_channels);
        c
    }

    fn grow(&mut self, num_channels: usize) {
        if self.stamp.len() < num_channels {
            self.stamp.resize(num_channels, 0);
            self.src.resize(num_channels, [0; 2]);
            self.dst.resize(num_channels, [0; 2]);
            self.nsrc.resize(num_channels, 0);
            self.ndst.resize(num_channels, 0);
        }
    }

    /// Start a fresh census over `num_channels` channels. No per-channel
    /// clearing: the epoch bump invalidates every previous entry.
    pub fn begin(&mut self, num_channels: usize) {
        self.grow(num_channels);
        self.touched.clear();
        let (bumped, wrapped) = self.epoch.overflowing_add(1);
        self.epoch = bumped;
        if wrapped {
            // Once per 2³² epochs: stale stamps could alias epoch 0.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Record that pair `(s, d)`'s path crosses channel `c`.
    #[inline]
    pub fn record(&mut self, c: ChannelId, s: u32, d: u32) {
        let i = c.index();
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.src[i] = [s, 0];
            self.dst[i] = [d, 0];
            self.nsrc[i] = 1;
            self.ndst[i] = 1;
            self.touched.push(c);
            return;
        }
        if self.nsrc[i] < SATURATE && self.src[i][0] != s {
            self.src[i][1] = s;
            self.nsrc[i] = 2;
        }
        if self.ndst[i] < SATURATE && self.dst[i][0] != d {
            self.dst[i][1] = d;
            self.ndst[i] = 2;
        }
    }

    /// Distinct sources recorded on `c` this epoch, saturated at 2.
    #[inline]
    pub fn num_sources(&self, c: ChannelId) -> usize {
        if self.live(c) {
            self.nsrc[c.index()] as usize
        } else {
            0
        }
    }

    /// Distinct destinations recorded on `c` this epoch, saturated at 2.
    #[inline]
    pub fn num_destinations(&self, c: ChannelId) -> usize {
        if self.live(c) {
            self.ndst[c.index()] as usize
        } else {
            0
        }
    }

    #[inline]
    fn live(&self, c: ChannelId) -> bool {
        c.index() < self.stamp.len() && self.stamp[c.index()] == self.epoch
    }

    /// Channels carrying any traffic this epoch, in first-touch order.
    pub fn touched(&self) -> &[ChannelId] {
        &self.touched
    }

    /// True when `c` carries ≥2 distinct sources **and** ≥2 distinct
    /// destinations — the Lemma 1 violation predicate.
    #[inline]
    pub fn violates(&self, c: ChannelId) -> bool {
        self.live(c) && self.nsrc[c.index()] >= 2 && self.ndst[c.index()] >= 2
    }

    /// The lowest-id channel violating Lemma 1 this epoch, if any.
    /// (Lowest-id, not first-touch: deterministic regardless of the record
    /// order, which is what the parallel sweeps normalize on.)
    pub fn first_violation(&self) -> Option<ChannelId> {
        self.touched
            .iter()
            .copied()
            .filter(|&c| self.violates(c))
            .min()
    }
}

/// Epoch-stamped `channel → owning pair` table for per-pattern contention
/// checks: a reusable, allocation-free replacement for the
/// `HashMap<ChannelId, SdPair>` in [`crate::verify::find_contention`].
#[derive(Clone, Debug, Default)]
pub struct ContentionScratch {
    epoch: u32,
    stamp: Vec<u32>,
    owner: Vec<SdPair>,
    loads: Vec<u32>,
    touched: Vec<ChannelId>,
}

impl ContentionScratch {
    /// A scratch sized for `num_channels` channels (it also grows on demand).
    pub fn with_channels(num_channels: usize) -> Self {
        Self {
            epoch: 0,
            stamp: vec![0; num_channels],
            owner: vec![SdPair::new(0, 0); num_channels],
            loads: vec![0; num_channels],
            touched: Vec::new(),
        }
    }

    fn begin(&mut self) {
        let (bumped, wrapped) = self.epoch.overflowing_add(1);
        self.epoch = bumped;
        if wrapped {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Find two pairs of `assignment` sharing a channel, if any — same
    /// contract as [`crate::verify::find_contention`], but reusing this
    /// scratch's buffers across calls (grow-on-demand, no hashing, no
    /// clearing).
    pub fn find_contention(&mut self, assignment: &RouteAssignment) -> Option<ContentionWitness> {
        self.begin();
        for (pair, path) in assignment.routes() {
            for &c in path.channels() {
                let i = c.index();
                if i >= self.stamp.len() {
                    self.stamp.resize(i + 1, 0);
                    self.owner.resize(i + 1, SdPair::new(0, 0));
                }
                if self.stamp[i] == self.epoch {
                    return Some(ContentionWitness {
                        channel: c,
                        a: self.owner[i],
                        b: *pair,
                    });
                }
                self.stamp[i] = self.epoch;
                self.owner[i] = *pair;
            }
        }
        None
    }

    /// The maximum link load of `assignment` with its deterministic
    /// witness — the **lowest-id** channel carrying that load — or `None`
    /// when no path crosses any channel. Same epoch-stamp discipline as
    /// [`ContentionScratch::find_contention`]: one pass over the
    /// assignment, zero hashing, buffers reused (and grown on demand)
    /// across calls. This is the per-pattern congestion verdict the
    /// min-congestion head-to-heads normalize on, so it must not depend on
    /// route order, thread count, or hash iteration.
    pub fn max_load_witness(&mut self, assignment: &RouteAssignment) -> Option<(ChannelId, u32)> {
        self.begin();
        self.touched.clear();
        for (_, path) in assignment.routes() {
            for &c in path.channels() {
                let i = c.index();
                if i >= self.stamp.len() {
                    self.stamp.resize(i + 1, 0);
                    self.owner.resize(i + 1, SdPair::new(0, 0));
                }
                if i >= self.loads.len() {
                    self.loads.resize(i + 1, 0);
                }
                if self.stamp[i] != self.epoch {
                    self.stamp[i] = self.epoch;
                    self.loads[i] = 0;
                    self.touched.push(c);
                }
                self.loads[i] += 1;
            }
        }
        let max = self.touched.iter().map(|c| self.loads[c.index()]).max()?;
        let witness = self
            .touched
            .iter()
            .copied()
            .filter(|c| self.loads[c.index()] == max)
            .min()
            .expect("max came from touched");
        Some((witness, max))
    }
}

/// The reusable contention engine for one single-path router: arena +
/// census, built once, queried many times.
#[derive(Clone, Debug)]
pub struct ContentionEngine {
    arena: PathArena,
    census: LinkCensus,
}

impl ContentionEngine {
    /// Route every SD pair once into the arena and take the full census.
    ///
    /// # Errors
    /// Propagates the router's routing errors (see [`PathArena::build`]).
    pub fn new<R: SinglePathRouter + ?Sized>(router: &R) -> Result<Self, RoutingError> {
        Ok(Self::from_arena(PathArena::build(router)?))
    }

    /// [`ContentionEngine::new`] with instrumentation: the arena build
    /// records under `arena.build` (see [`PathArena::build_with`]) and the
    /// census pass under `engine.census`, with counters
    /// `engine.census_records` (path entries censused) and
    /// `engine.channels_touched`. With [`Noop`] this is exactly `new`.
    ///
    /// # Errors
    /// Propagates the router's routing errors (see [`PathArena::build`]).
    pub fn new_with<R: SinglePathRouter + ?Sized, Rec: Recorder>(
        router: &R,
        rec: &Rec,
    ) -> Result<Self, RoutingError> {
        let arena = PathArena::build_with(router, rec)?;
        Ok(Self::from_arena_with(arena, rec))
    }

    /// Wrap an existing arena (shares the census build).
    pub fn from_arena(arena: PathArena) -> Self {
        Self::from_arena_with(arena, &Noop)
    }

    /// [`ContentionEngine::from_arena`] with the census pass recorded.
    pub fn from_arena_with<Rec: Recorder>(arena: PathArena, rec: &Rec) -> Self {
        let _span = rec.span("engine.census");
        let mut census = LinkCensus::with_channels(arena.num_channels());
        census.begin(arena.num_channels());
        Self::record_all(&arena, &mut census);
        rec.add("engine.census_records", arena.total_hops() as u64);
        rec.add("engine.channels_touched", census.touched().len() as u64);
        Self { arena, census }
    }

    fn record_all(arena: &PathArena, census: &mut LinkCensus) {
        let ports = arena.ports();
        for s in 0..ports {
            for d in 0..ports {
                if s == d {
                    continue;
                }
                for &c in arena.path(SdPair::new(s, d)) {
                    census.record(c, s, d);
                }
            }
        }
    }

    /// Re-take the census from the arena into the same buffers (what a
    /// repeated audit costs once the arena exists: one epoch bump plus one
    /// pass over the CSR — zero allocation, zero hashing).
    pub fn recount(&mut self) {
        let mut census = std::mem::take(&mut self.census);
        census.begin(self.arena.num_channels());
        Self::record_all(&self.arena, &mut census);
        self.census = census;
    }

    /// The underlying path arena.
    pub fn arena(&self) -> &PathArena {
        &self.arena
    }

    /// The current census.
    pub fn census(&self) -> &LinkCensus {
        &self.census
    }

    /// The Lemma 1 verdict: the lowest-id violating channel with an exact
    /// two-pair witness, or `Ok(())` when the routing is nonblocking.
    ///
    /// The witness construction mirrors the paper's necessity proof, reading
    /// crossing pairs off the arena's incidence list instead of re-routing:
    /// a channel with ≥2 sources and ≥2 destinations among its crossing
    /// pairs always admits two pairs with distinct sources *and* distinct
    /// destinations.
    pub fn lemma1_violation(&self) -> Option<LinkViolation> {
        self.lemma1_violation_with(&Noop)
    }

    /// [`ContentionEngine::lemma1_violation`] with instrumentation: the
    /// census scan records under span `engine.scan` (plus counter
    /// `engine.channels_scanned`) and witness construction under
    /// `engine.witness`.
    pub fn lemma1_violation_with<Rec: Recorder>(&self, rec: &Rec) -> Option<LinkViolation> {
        let scan = rec.span("engine.scan");
        rec.add(
            "engine.channels_scanned",
            self.census.touched().len() as u64,
        );
        let c = self.census.first_violation();
        drop(scan);
        let c = c?;
        let _witness = rec.span("engine.witness");
        Some(self.violation_witness(c))
    }

    /// Construct the two-pair witness on a channel known to violate the
    /// census predicate.
    fn violation_witness(&self, c: ChannelId) -> LinkViolation {
        let pairs = self.arena.pairs_on(c);
        debug_assert!(!pairs.is_empty());
        let a = self.arena.pair_of(pairs[0]);
        // First crossing pair with a different source.
        let b = pairs
            .iter()
            .map(|&i| self.arena.pair_of(i))
            .find(|q| q.src != a.src)
            .expect("census saw >= 2 sources");
        if b.dst != a.dst {
            return LinkViolation {
                channel: c,
                sources: [a.src, b.src],
                destinations: [a.dst, b.dst],
            };
        }
        // a and b share a destination; some crossing pair t has another.
        let t = pairs
            .iter()
            .map(|&i| self.arena.pair_of(i))
            .find(|q| q.dst != a.dst)
            .expect("census saw >= 2 destinations");
        // t's source differs from at least one of a, b (they differ from
        // each other); pair it with that one.
        let other = if t.src != a.src { a } else { b };
        LinkViolation {
            channel: c,
            sources: [other.src, t.src],
            destinations: [other.dst, t.dst],
        }
    }

    /// Is the router nonblocking per Lemma 1? (Exact, complete.)
    pub fn is_nonblocking(&self) -> bool {
        self.census.first_violation().is_none()
    }

    /// The blocking two-pair witness via a parallel per-channel sweep:
    /// instead of routing all `O(p⁴)` two-pair patterns, scan the touched
    /// channels' censuses and materialize the witness from the incidence
    /// list of the lowest violating channel (a deterministic first-witness
    /// reduction — the answer is independent of thread count and schedule).
    pub fn blocking_witness(&self) -> Option<(ChannelId, [SdPair; 2])> {
        self.blocking_witness_with(&Noop)
    }

    /// [`ContentionEngine::blocking_witness`] with the channel scan and
    /// witness normalization recorded (spans `engine.scan` /
    /// `engine.witness`, counter `engine.channels_scanned`).
    pub fn blocking_witness_with<Rec: Recorder>(
        &self,
        rec: &Rec,
    ) -> Option<(ChannelId, [SdPair; 2])> {
        let scan = rec.span("engine.scan");
        rec.add(
            "engine.channels_scanned",
            self.census.touched().len() as u64,
        );
        let first = self
            .census
            .touched()
            .par_iter()
            .copied()
            .filter(|&c| self.census.violates(c))
            .min();
        drop(scan);
        let c = first?;
        let _witness = rec.span("engine.witness");
        let v = self.violation_witness(c);
        Some((
            c,
            [
                SdPair::new(v.sources[0], v.destinations[0]),
                SdPair::new(v.sources[1], v.destinations[1]),
            ],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{find_contention, LinkAudit};
    use ftclos_routing::{route_all, DModK, SModK, YuanDeterministic};
    use ftclos_topo::Ftree;
    use ftclos_traffic::{patterns, Permutation};

    #[test]
    fn census_epoch_reuse_without_clearing() {
        let mut census = LinkCensus::with_channels(8);
        census.begin(8);
        census.record(ChannelId(3), 0, 1);
        census.record(ChannelId(3), 2, 5);
        assert_eq!(census.num_sources(ChannelId(3)), 2);
        assert!(census.violates(ChannelId(3)));
        assert_eq!(census.first_violation(), Some(ChannelId(3)));
        // New epoch: everything forgotten, no clearing performed.
        census.begin(8);
        assert_eq!(census.num_sources(ChannelId(3)), 0);
        assert!(census.first_violation().is_none());
        census.record(ChannelId(3), 7, 7);
        assert_eq!(census.num_sources(ChannelId(3)), 1);
        assert_eq!(census.touched(), &[ChannelId(3)]);
    }

    #[test]
    fn census_saturates_at_two() {
        let mut census = LinkCensus::with_channels(2);
        census.begin(2);
        for s in 0..5 {
            census.record(ChannelId(0), s, 9);
        }
        assert_eq!(census.num_sources(ChannelId(0)), 2);
        assert_eq!(census.num_destinations(ChannelId(0)), 1);
        assert!(!census.violates(ChannelId(0)));
    }

    #[test]
    fn engine_verdict_matches_legacy_audit() {
        for (n, m, r) in [(2usize, 4usize, 5usize), (2, 2, 5), (3, 9, 7), (3, 5, 6)] {
            let ft = Ftree::new(n, m, r).unwrap();
            for which in 0..2 {
                let (legacy, engine_nb, violation) = if which == 0 {
                    let router = DModK::new(&ft);
                    let audit = LinkAudit::build(&router);
                    let engine = ContentionEngine::new(&router).unwrap();
                    (
                        audit.lemma1_check(&router).is_ok(),
                        engine.is_nonblocking(),
                        engine.lemma1_violation(),
                    )
                } else {
                    let router = SModK::new(&ft);
                    let audit = LinkAudit::build(&router);
                    let engine = ContentionEngine::new(&router).unwrap();
                    (
                        audit.lemma1_check(&router).is_ok(),
                        engine.is_nonblocking(),
                        engine.lemma1_violation(),
                    )
                };
                assert_eq!(legacy, engine_nb, "n={n} m={m} r={r} which={which}");
                assert_eq!(engine_nb, violation.is_none());
            }
        }
    }

    #[test]
    fn engine_witness_actually_blocks() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let engine = ContentionEngine::new(&router).unwrap();
        let (channel, pairs) = engine.blocking_witness().expect("m < n² blocks");
        assert_ne!(pairs[0].src, pairs[1].src);
        assert_ne!(pairs[0].dst, pairs[1].dst);
        let perm = Permutation::from_pairs(10, pairs).unwrap();
        let a = route_all(&router, &perm).unwrap();
        let w = find_contention(&a).expect("witness contends");
        // Both witness paths really cross the reported channel.
        assert!(engine.arena().path(pairs[0]).contains(&channel));
        assert!(engine.arena().path(pairs[1]).contains(&channel));
        assert!(a.max_channel_load() >= 2, "{w:?}");
    }

    #[test]
    fn engine_clean_on_theorem3_routing() {
        let ft = Ftree::new(3, 9, 7).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let engine = ContentionEngine::new(&router).unwrap();
        assert!(engine.is_nonblocking());
        assert!(engine.blocking_witness().is_none());
        assert!(engine.lemma1_violation().is_none());
    }

    #[test]
    fn recount_is_stable() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let mut engine = ContentionEngine::new(&router).unwrap();
        let before = engine.lemma1_violation();
        for _ in 0..3 {
            engine.recount();
        }
        assert_eq!(engine.lemma1_violation(), before);
    }

    #[test]
    fn scratch_matches_hashmap_contention() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let mut scratch = ContentionScratch::default();
        for k in 0..10 {
            let perm = patterns::shift(10, k);
            let a = route_all(&router, &perm).unwrap();
            let fast = scratch.find_contention(&a);
            let slow = find_contention(&a);
            assert_eq!(fast.is_some(), slow.is_some(), "shift:{k}");
            if let Some(w) = fast {
                // The scratch witness is a real collision on that channel.
                let on: Vec<_> = a
                    .routes()
                    .iter()
                    .filter(|(_, p)| p.channels().contains(&w.channel))
                    .map(|(pair, _)| *pair)
                    .collect();
                assert!(on.contains(&w.a) && on.contains(&w.b));
            }
        }
    }

    #[test]
    fn max_load_witness_matches_channel_loads() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let mut scratch = ContentionScratch::default();
        for k in 0..10 {
            let perm = patterns::shift(10, k);
            let a = route_all(&router, &perm).unwrap();
            let got = scratch.max_load_witness(&a);
            let loads = a.channel_loads();
            match got {
                None => assert!(loads.is_empty(), "shift:{k}"),
                Some((witness, max)) => {
                    assert_eq!(max, a.max_channel_load(), "shift:{k}");
                    assert_eq!(loads[&witness], max, "shift:{k}");
                    // Deterministic: lowest-id among the max-loaded.
                    for (&c, &l) in &loads {
                        if l == max {
                            assert!(witness <= c, "shift:{k}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn max_load_witness_epoch_reuse_and_empty_assignment() {
        let mut scratch = ContentionScratch::with_channels(4);
        assert_eq!(
            scratch.max_load_witness(&RouteAssignment::new(vec![])),
            None
        );
        let ft = Ftree::new(2, 4, 3).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(6, 1);
        let a = route_all(&router, &perm).unwrap();
        let first = scratch.max_load_witness(&a);
        // Interleave a contention probe, then repeat: stale stamps/loads
        // from other epochs must not leak into the verdict.
        let _ = scratch.find_contention(&a);
        assert_eq!(scratch.max_load_witness(&a), first);
        assert_eq!(first.map(|(_, m)| m), Some(1));
    }

    #[test]
    fn recorded_engine_matches_plain_and_emits_spans() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let plain = ContentionEngine::new(&router).unwrap();
        let reg = ftclos_obs::Registry::new();
        let recorded = ContentionEngine::new_with(&router, &reg).unwrap();
        assert_eq!(
            plain.blocking_witness(),
            recorded.blocking_witness_with(&reg)
        );
        assert_eq!(
            plain.lemma1_violation(),
            recorded.lemma1_violation_with(&reg)
        );
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("engine.census_records"),
            Some(recorded.arena().total_hops() as u64)
        );
        for path in [
            "arena.build",
            "engine.census",
            "engine.scan",
            "engine.witness",
        ] {
            assert!(
                snap.spans.iter().any(|s| s.path == path),
                "missing span {path}"
            );
        }
    }

    #[test]
    fn census_counts_match_audit_lists() {
        let ft = Ftree::new(2, 4, 3).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let engine = ContentionEngine::new(&router).unwrap();
        let audit = LinkAudit::build(&router);
        for &c in engine.census().touched() {
            let (srcs, dsts) = audit.channel_census(c).unwrap();
            assert_eq!(engine.census().num_sources(c), srcs.len().min(2), "{c}");
            assert_eq!(
                engine.census().num_destinations(c),
                dsts.len().min(2),
                "{c}"
            );
        }
        assert_eq!(engine.census().touched().len(), audit.used_channels());
    }
}
