//! Typed errors for the simulator: configuration rejection, structured
//! engine-invariant violations (instead of `expect`-style panics that take
//! down a whole batch run), and the stall-watchdog diagnosis.

use ftclos_topo::ChannelId;
use std::fmt;

/// A [`crate::SimConfig`] the engine cannot execute meaningfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `queue_capacity == 0`: no downstream credit can ever exist, every
    /// switch output deadlocks on its first packet.
    ZeroQueueCapacity,
    /// `packet_flits == 0`: a packet must occupy a wire for ≥ 1 cycle.
    ZeroPacketFlits,
    /// `retry == true` with `retry_limit == 0`: retries enabled but no
    /// retransmission could ever happen.
    ZeroRetryLimit,
    /// `retry == true` with `ttl_cycles == 0`: retransmission triggers on
    /// timeout, so retries without a TTL never fire.
    RetryWithoutTimeout,
    /// `stall_watchdog` enabled but not larger than `packet_flits`:
    /// multi-flit serialization legitimately pauses all movement for
    /// `packet_flits - 1` consecutive cycles, so a shorter watchdog would
    /// fire on healthy runs.
    WatchdogTooShort,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroQueueCapacity => {
                write!(f, "queue_capacity must be > 0 (zero-size queues deadlock)")
            }
            ConfigError::ZeroPacketFlits => {
                write!(
                    f,
                    "packet_flits must be > 0 (a packet occupies a wire for at least one cycle)"
                )
            }
            ConfigError::ZeroRetryLimit => {
                write!(
                    f,
                    "retry is enabled but retry_limit is 0 (no retransmission could happen)"
                )
            }
            ConfigError::RetryWithoutTimeout => {
                write!(
                    f,
                    "retry is enabled but ttl_cycles is 0 (retransmission triggers on timeout)"
                )
            }
            ConfigError::WatchdogTooShort => {
                write!(
                    f,
                    "stall_watchdog must exceed packet_flits (serialization pauses movement)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// One blocked packet strand in a stalled network: the head packet of a
/// queue, the channel it occupies, and the channel it waits for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Strand {
    /// Source leaf port of the blocked head packet.
    pub src: u32,
    /// Destination leaf port of the blocked head packet.
    pub dst: u32,
    /// Channel whose queue the packet heads (`None` for packets still in a
    /// leaf injection queue — they hold no fabric resource yet).
    pub holds: Option<ChannelId>,
    /// The next channel the packet needs (wire free + downstream credit).
    pub waits_for: ChannelId,
    /// Packets stranded in the same queue, head included.
    pub queued: usize,
}

/// The stall watchdog's diagnosis: what is stuck and why (see
/// [`crate::SimConfig::stall_watchdog`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallReport {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Packets injected but neither delivered nor abandoned.
    pub in_flight: u64,
    /// One entry per blocked queue head, ordered by held channel id
    /// (injection-queue strands last, by source port).
    pub strands: Vec<Strand>,
    /// The credit wait-for cycle among held channels, if one exists:
    /// `wait_cycle[i]` is held by a head packet waiting for
    /// `wait_cycle[(i + 1) % len]` — the dynamic face of a cyclic channel
    /// dependency. Rotated to start at its smallest channel id. Empty when
    /// the stall is acyclic (e.g. traffic wedged behind a dead channel).
    pub wait_cycle: Vec<ChannelId>,
}

impl StallReport {
    /// Total packets stranded across all blocked queues.
    pub fn stranded_packets(&self) -> usize {
        self.strands.iter().map(|s| s.queued).sum()
    }
}

/// Errors from a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed [`crate::SimConfig::validate`].
    Config(ConfigError),
    /// An engine invariant broke mid-run (a bug, not an input problem):
    /// reported as data so batch drivers can isolate the failed run.
    Invariant {
        /// What the engine expected and what it found.
        detail: String,
    },
    /// A pinned route handed to [`crate::Policy::from_pinned`] is not a
    /// walkable path of the topology for its pair (bad endpoint, dead
    /// continuity, out-of-range channel, or a duplicate pair).
    PinnedPath {
        /// Source port of the offending route.
        src: u32,
        /// Destination port of the offending route.
        dst: u32,
        /// What made the route unusable.
        detail: String,
    },
    /// The stall watchdog fired: packets were in flight but nothing moved
    /// for [`crate::SimConfig::stall_watchdog`] consecutive cycles. Carries
    /// the full strand graph so the wedge is diagnosable without re-running.
    Stalled(StallReport),
}

impl SimError {
    /// Construct an invariant violation.
    pub fn invariant(detail: impl Into<String>) -> Self {
        SimError::Invariant {
            detail: detail.into(),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid simulation config: {e}"),
            SimError::Invariant { detail } => {
                write!(f, "simulation invariant violated: {detail}")
            }
            SimError::PinnedPath { src, dst, detail } => {
                write!(
                    f,
                    "pinned route for pair ({src}, {dst}) is unusable: {detail}"
                )
            }
            SimError::Stalled(report) => {
                write!(
                    f,
                    "simulation stalled at cycle {}: {} in flight, {} blocked strands, \
                     wait-for cycle of {} channels",
                    report.cycle,
                    report.in_flight,
                    report.strands.len(),
                    report.wait_cycle.len()
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Invariant { .. } | SimError::PinnedPath { .. } | SimError::Stalled(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: SimError = ConfigError::ZeroQueueCapacity.into();
        assert!(e.to_string().contains("queue_capacity"));
        let e = SimError::invariant("head vanished");
        assert!(e.to_string().contains("head vanished"));
        assert_ne!(
            SimError::from(ConfigError::ZeroPacketFlits),
            SimError::from(ConfigError::ZeroRetryLimit)
        );
    }
}
