//! Typed errors for the simulator: configuration rejection and structured
//! engine-invariant violations (instead of `expect`-style panics that take
//! down a whole batch run).

use std::fmt;

/// A [`crate::SimConfig`] the engine cannot execute meaningfully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `queue_capacity == 0`: no downstream credit can ever exist, every
    /// switch output deadlocks on its first packet.
    ZeroQueueCapacity,
    /// `packet_flits == 0`: a packet must occupy a wire for ≥ 1 cycle.
    ZeroPacketFlits,
    /// `retry == true` with `retry_limit == 0`: retries enabled but no
    /// retransmission could ever happen.
    ZeroRetryLimit,
    /// `retry == true` with `ttl_cycles == 0`: retransmission triggers on
    /// timeout, so retries without a TTL never fire.
    RetryWithoutTimeout,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroQueueCapacity => {
                write!(f, "queue_capacity must be > 0 (zero-size queues deadlock)")
            }
            ConfigError::ZeroPacketFlits => {
                write!(
                    f,
                    "packet_flits must be > 0 (a packet occupies a wire for at least one cycle)"
                )
            }
            ConfigError::ZeroRetryLimit => {
                write!(
                    f,
                    "retry is enabled but retry_limit is 0 (no retransmission could happen)"
                )
            }
            ConfigError::RetryWithoutTimeout => {
                write!(
                    f,
                    "retry is enabled but ttl_cycles is 0 (retransmission triggers on timeout)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors from a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed [`crate::SimConfig::validate`].
    Config(ConfigError),
    /// An engine invariant broke mid-run (a bug, not an input problem):
    /// reported as data so batch drivers can isolate the failed run.
    Invariant {
        /// What the engine expected and what it found.
        detail: String,
    },
    /// A pinned route handed to [`crate::Policy::from_pinned`] is not a
    /// walkable path of the topology for its pair (bad endpoint, dead
    /// continuity, out-of-range channel, or a duplicate pair).
    PinnedPath {
        /// Source port of the offending route.
        src: u32,
        /// Destination port of the offending route.
        dst: u32,
        /// What made the route unusable.
        detail: String,
    },
}

impl SimError {
    /// Construct an invariant violation.
    pub fn invariant(detail: impl Into<String>) -> Self {
        SimError::Invariant {
            detail: detail.into(),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid simulation config: {e}"),
            SimError::Invariant { detail } => {
                write!(f, "simulation invariant violated: {detail}")
            }
            SimError::PinnedPath { src, dst, detail } => {
                write!(
                    f,
                    "pinned route for pair ({src}, {dst}) is unusable: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Invariant { .. } | SimError::PinnedPath { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: SimError = ConfigError::ZeroQueueCapacity.into();
        assert!(e.to_string().contains("queue_capacity"));
        let e = SimError::invariant("head vanished");
        assert!(e.to_string().contains("head vanished"));
        assert_ne!(
            SimError::from(ConfigError::ZeroPacketFlits),
            SimError::from(ConfigError::ZeroRetryLimit)
        );
    }
}
