//! Simulator configuration.

use serde::{Deserialize, Serialize};

/// Switch arbitration discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arbiter {
    /// One FIFO per input channel, round-robin per output over input
    /// *heads* only — subject to classic head-of-line blocking (a blocked
    /// head packet stalls everything behind it).
    HolFifo,
    /// Virtual output queues over a shared per-input buffer with iSLIP
    /// request-grant-accept matching (`iterations` rounds per cycle).
    /// Eliminates head-of-line blocking; with uniform traffic a crossbar
    /// under `Voq` sustains ~100% where `HolFifo` caps near the classic
    /// 58.6%.
    Voq {
        /// iSLIP iterations per cycle (1 is the hardware-typical choice).
        iterations: u8,
    },
}

/// Knobs for one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cycles simulated before measurement starts (queue warm-up).
    pub warmup_cycles: u64,
    /// Cycles in the measurement window.
    pub measure_cycles: u64,
    /// Capacity of each channel's downstream FIFO, in packets.
    pub queue_capacity: usize,
    /// If true, injection-queue length is capped at `queue_capacity` too
    /// (closed-loop sources); if false, sources are open-loop (unbounded
    /// injection queues), the standard setup for saturation measurement.
    pub bounded_injection: bool,
    /// Packet length in flits. A packet holds each channel it crosses for
    /// `packet_flits` consecutive cycles (store-and-forward serialization);
    /// 1 recovers the classic single-flit model.
    pub packet_flits: u64,
    /// Switch arbitration discipline.
    pub arbiter: Arbiter,
    /// After the measurement window, keep running (injection off) until the
    /// network is empty, so packet conservation can be checked exactly.
    /// Draining is capped at [`SimConfig::DRAIN_CAP`] extra cycles;
    /// packets still queued then are reported as
    /// `SimStats::leftover_packets`.
    pub drain: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            warmup_cycles: 500,
            measure_cycles: 2_000,
            queue_capacity: 8,
            bounded_injection: false,
            packet_flits: 1,
            arbiter: Arbiter::HolFifo,
            drain: false,
        }
    }
}

impl SimConfig {
    /// Upper bound on extra drain cycles (see [`SimConfig::drain`]).
    pub const DRAIN_CAP: u64 = 1_000_000;

    /// Total injection cycles (warm-up + measurement; drain excluded).
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_total() {
        let c = SimConfig::default();
        assert_eq!(c.total_cycles(), 2_500);
        assert!(!c.bounded_injection);
        assert!(c.queue_capacity > 0);
        assert_eq!(c.packet_flits, 1);
    }
}
