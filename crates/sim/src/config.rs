//! Simulator configuration.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};

/// Switch arbitration discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arbiter {
    /// One FIFO per input channel, round-robin per output over input
    /// *heads* only — subject to classic head-of-line blocking (a blocked
    /// head packet stalls everything behind it).
    HolFifo,
    /// Virtual output queues over a shared per-input buffer with iSLIP
    /// request-grant-accept matching (`iterations` rounds per cycle).
    /// Eliminates head-of-line blocking; with uniform traffic a crossbar
    /// under `Voq` sustains ~100% where `HolFifo` caps near the classic
    /// 58.6%.
    Voq {
        /// iSLIP iterations per cycle (1 is the hardware-typical choice).
        iterations: u8,
    },
}

/// Knobs for one simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cycles simulated before measurement starts (queue warm-up).
    pub warmup_cycles: u64,
    /// Cycles in the measurement window.
    pub measure_cycles: u64,
    /// Capacity of each channel's downstream FIFO, in packets.
    pub queue_capacity: usize,
    /// If true, injection-queue length is capped at `queue_capacity` too
    /// (closed-loop sources); if false, sources are open-loop (unbounded
    /// injection queues), the standard setup for saturation measurement.
    pub bounded_injection: bool,
    /// Packet length in flits. A packet holds each channel it crosses for
    /// `packet_flits` consecutive cycles (store-and-forward serialization);
    /// 1 recovers the classic single-flit model.
    pub packet_flits: u64,
    /// Switch arbitration discipline.
    pub arbiter: Arbiter,
    /// After the measurement window, keep running (injection off) until the
    /// network is empty, so packet conservation can be checked exactly.
    /// Draining is capped at [`SimConfig::DRAIN_CAP`] extra cycles;
    /// packets still queued then are reported as
    /// `SimStats::leftover_packets`.
    pub drain: bool,
    /// Per-attempt packet time-to-live in cycles; a packet that has not been
    /// delivered `ttl_cycles` after its (re)injection is dropped where it
    /// waits. 0 disables timeouts (packets wait forever — the pre-fault
    /// model).
    pub ttl_cycles: u64,
    /// Retransmit timed-out packets from their source (with a fresh path
    /// pick, so spreading policies can route around a failure). Requires
    /// `ttl_cycles > 0` and `retry_limit > 0`.
    pub retry: bool,
    /// Maximum retransmissions per packet when `retry` is on; once
    /// exhausted the packet is abandoned (`SimStats::abandoned_total`).
    pub retry_limit: u32,
    /// Bounded-progress stall watchdog: if, for this many *consecutive*
    /// cycles, packets are in flight but nothing is delivered, abandoned,
    /// retired, or moved across any channel, the run aborts with
    /// [`crate::SimError::Stalled`] carrying the strand graph (blocked
    /// packets, the channels they wait on, and the credit wait-for cycle if
    /// one exists) instead of spinning to the drain cap. `0` disables the
    /// watchdog (the default). Must exceed `packet_flits` — multi-flit
    /// serialization legitimately pauses all movement for `packet_flits - 1`
    /// cycles.
    pub stall_watchdog: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            warmup_cycles: 500,
            measure_cycles: 2_000,
            queue_capacity: 8,
            bounded_injection: false,
            packet_flits: 1,
            arbiter: Arbiter::HolFifo,
            drain: false,
            ttl_cycles: 0,
            retry: false,
            retry_limit: 0,
            stall_watchdog: 0,
        }
    }
}

impl SimConfig {
    /// Upper bound on extra drain cycles (see [`SimConfig::drain`]).
    pub const DRAIN_CAP: u64 = 1_000_000;

    /// Total injection cycles (warm-up + measurement; drain excluded).
    pub fn total_cycles(&self) -> u64 {
        self.warmup_cycles + self.measure_cycles
    }

    /// Self-check: reject configurations the engine cannot execute
    /// meaningfully.
    ///
    /// # Errors
    /// * [`ConfigError::ZeroQueueCapacity`] — zero-size queues deadlock
    ///   every switch output (no downstream credit can ever exist),
    /// * [`ConfigError::ZeroPacketFlits`] — a packet must occupy a wire for
    ///   at least one cycle,
    /// * [`ConfigError::ZeroRetryLimit`] — retries enabled with a limit of
    ///   0 silently degrade to no-retry,
    /// * [`ConfigError::RetryWithoutTimeout`] — retransmission can only
    ///   trigger from a timeout, so `retry` requires `ttl_cycles > 0`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.packet_flits == 0 {
            return Err(ConfigError::ZeroPacketFlits);
        }
        if self.retry && self.retry_limit == 0 {
            return Err(ConfigError::ZeroRetryLimit);
        }
        if self.retry && self.ttl_cycles == 0 {
            return Err(ConfigError::RetryWithoutTimeout);
        }
        if self.stall_watchdog > 0 && self.stall_watchdog <= self.packet_flits {
            return Err(ConfigError::WatchdogTooShort);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_total() {
        let c = SimConfig::default();
        assert_eq!(c.total_cycles(), 2_500);
        assert!(!c.bounded_injection);
        assert!(c.queue_capacity > 0);
        assert_eq!(c.packet_flits, 1);
        assert_eq!(c.ttl_cycles, 0);
        assert!(!c.retry);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let base = SimConfig::default();
        assert_eq!(
            SimConfig {
                queue_capacity: 0,
                ..base
            }
            .validate(),
            Err(ConfigError::ZeroQueueCapacity)
        );
        assert_eq!(
            SimConfig {
                packet_flits: 0,
                ..base
            }
            .validate(),
            Err(ConfigError::ZeroPacketFlits)
        );
        assert_eq!(
            SimConfig {
                retry: true,
                retry_limit: 0,
                ttl_cycles: 64,
                ..base
            }
            .validate(),
            Err(ConfigError::ZeroRetryLimit)
        );
        assert_eq!(
            SimConfig {
                retry: true,
                retry_limit: 3,
                ttl_cycles: 0,
                ..base
            }
            .validate(),
            Err(ConfigError::RetryWithoutTimeout)
        );
        SimConfig {
            retry: true,
            retry_limit: 3,
            ttl_cycles: 64,
            ..base
        }
        .validate()
        .unwrap();
        assert_eq!(
            SimConfig {
                stall_watchdog: 4,
                packet_flits: 4,
                ..base
            }
            .validate(),
            Err(ConfigError::WatchdogTooShort)
        );
        SimConfig {
            stall_watchdog: 5,
            packet_flits: 4,
            ..base
        }
        .validate()
        .unwrap();
    }
}
