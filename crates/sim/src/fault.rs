//! Mid-run liveness events: channels dying — and coming back — on schedule.
//!
//! A [`ChurnSchedule`] is passed alongside the workload (the
//! [`crate::SimConfig`] stays `Copy`); the engine applies each scheduled
//! transition at the start of its cycle. Dead channels grant no packets, so
//! traffic routed over them stalls until the TTL/retry machinery (see
//! [`crate::SimConfig::ttl_cycles`]) drops or re-routes it; revived channels
//! grant again from their cycle on — exactly the transient-fault operation
//! the E18 experiment measures. The fault-only subset (every transition
//! `Down`) is the degraded operation of E17; [`FaultSchedule`] remains as an
//! alias for that reading.
//!
//! Events live in an ordered set, so insertion is **idempotent**: scheduling
//! the same `(cycle, channel, transition)` twice counts once. Within one
//! cycle events apply in `(channel, Down-before-Up)` order — a down and an
//! up of the same channel on the same cycle net out to *up*.

use ftclos_topo::{ChannelId, FaultSet, FaultyView, Topology, Transition};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One channel liveness transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle at the start of which the transition applies.
    pub cycle: u64,
    /// The directed channel changing state.
    pub channel: ChannelId,
    /// Whether the channel goes down or comes back up.
    pub transition: Transition,
}

/// A set of scheduled channel transitions for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: BTreeSet<FaultEvent>,
}

/// The fault-only reading of a [`ChurnSchedule`]: every event a death.
/// Kept for the static-degradation experiments (E17) and existing call
/// sites; the churn machinery accepts either name.
pub type FaultSchedule = ChurnSchedule;

impl ChurnSchedule {
    /// Empty schedule (a churn-free run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any transition is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of scheduled `Down` transitions.
    pub fn num_downs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.transition == Transition::Down)
            .count()
    }

    /// Number of scheduled `Up` transitions.
    pub fn num_ups(&self) -> usize {
        self.len() - self.num_downs()
    }

    /// Schedule one transition. Idempotent: re-inserting an identical
    /// `(cycle, channel, transition)` leaves the schedule unchanged.
    pub fn schedule(
        &mut self,
        cycle: u64,
        channel: ChannelId,
        transition: Transition,
    ) -> &mut Self {
        self.events.insert(FaultEvent {
            cycle,
            channel,
            transition,
        });
        self
    }

    /// Kill one directed channel at `cycle`.
    pub fn kill_channel(&mut self, cycle: u64, channel: ChannelId) -> &mut Self {
        self.schedule(cycle, channel, Transition::Down)
    }

    /// Revive one directed channel at `cycle`.
    pub fn revive_channel(&mut self, cycle: u64, channel: ChannelId) -> &mut Self {
        self.schedule(cycle, channel, Transition::Up)
    }

    /// Kill a whole cable at `cycle`: the channel and its reverse.
    pub fn kill_link(&mut self, cycle: u64, topo: &Topology, channel: ChannelId) -> &mut Self {
        self.kill_channel(cycle, channel);
        if let Some(rev) = topo.reverse(channel) {
            self.kill_channel(cycle, rev);
        }
        self
    }

    /// Revive a whole cable at `cycle`: the channel and its reverse.
    pub fn revive_link(&mut self, cycle: u64, topo: &Topology, channel: ChannelId) -> &mut Self {
        self.revive_channel(cycle, channel);
        if let Some(rev) = topo.reverse(channel) {
            self.revive_channel(cycle, rev);
        }
        self
    }

    /// Apply a whole static [`FaultSet`] at `cycle` (failed switches expand
    /// to their incident channels, as in [`FaultyView`]).
    pub fn from_fault_set(cycle: u64, topo: &Topology, faults: &FaultSet) -> Self {
        let view = FaultyView::new(topo, faults);
        let mut schedule = Self::new();
        for c in topo.channel_ids() {
            if !view.channel_alive(c) {
                schedule.kill_channel(cycle, c);
            }
        }
        schedule
    }

    /// Deterministic MTBF/MTTR link flapping: pick `links` random cables
    /// (uniform over the topology's bidirectional links, clamped to their
    /// count) and alternate exponentially distributed up/down intervals —
    /// mean `mtbf` cycles up, mean `mttr` cycles down — over `[0, horizon)`.
    ///
    /// Both directions of a cable transition together. Everything is driven
    /// by `seed` (no wall clock): equal seeds give identical schedules.
    /// Zero means are clamped to one cycle.
    pub fn flapping_links(
        topo: &Topology,
        links: usize,
        mtbf: u64,
        mttr: u64,
        horizon: u64,
        seed: u64,
    ) -> Self {
        // One representative channel per cable, as in `FaultSet::random_links`.
        let mut cables: Vec<ChannelId> = topo
            .channel_ids()
            .filter(|&c| match topo.reverse(c) {
                Some(r) => c.0 < r.0,
                None => true,
            })
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let links = links.min(cables.len());
        for i in 0..links {
            let j = rng.gen_range(i..cables.len());
            cables.swap(i, j);
        }
        let mut schedule = Self::new();
        for &cable in &cables[..links] {
            let mut t = exp_sample(mtbf, &mut rng);
            while t < horizon {
                schedule.kill_link(t, topo, cable);
                t += exp_sample(mttr, &mut rng);
                if t >= horizon {
                    break; // the link stays down past the horizon
                }
                schedule.revive_link(t, topo, cable);
                t += exp_sample(mtbf, &mut rng);
            }
        }
        schedule
    }

    /// The scheduled events in application order: ascending cycle, then
    /// channel, with `Down` before `Up` (so a same-cycle flap nets to up).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        self.events.iter().copied().collect()
    }

    /// The distinct cycles at which at least one transition applies — the
    /// epoch boundaries of the run.
    pub fn transition_cycles(&self) -> Vec<u64> {
        let mut cycles: Vec<u64> = self.events.iter().map(|e| e.cycle).collect();
        cycles.dedup();
        cycles
    }
}

/// An exponentially distributed duration with the given mean, rounded to
/// whole cycles and clamped to at least one.
fn exp_sample<R: Rng>(mean: u64, rng: &mut R) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let d = -(mean.max(1) as f64) * (1.0 - u).ln();
    (d.round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_topo::Ftree;

    #[test]
    fn schedule_builders() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut s = FaultSchedule::new();
        assert!(s.is_empty());
        s.kill_link(100, ft.topology(), ft.up_channel(0, 0));
        assert_eq!(s.len(), 2, "cable = both directions");
        // Idempotent: re-killing the same cable at the same cycle (or one
        // of its directions individually) adds nothing.
        s.kill_link(100, ft.topology(), ft.up_channel(0, 0));
        s.kill_channel(100, ft.up_channel(0, 0));
        assert_eq!(s.len(), 2, "duplicate insertions must not double-count");
        s.kill_channel(50, ft.down_channel(1, 2));
        let sorted = s.sorted_events();
        assert_eq!(sorted[0].cycle, 50);
        assert_eq!(sorted.last().unwrap().cycle, 100);
        assert!(sorted.iter().all(|e| e.transition == Transition::Down));
    }

    #[test]
    fn revive_builders_schedule_up_transitions() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut s = ChurnSchedule::new();
        s.kill_link(100, ft.topology(), ft.up_channel(0, 0));
        s.revive_link(200, ft.topology(), ft.up_channel(0, 0));
        s.revive_link(200, ft.topology(), ft.up_channel(0, 0));
        assert_eq!(s.len(), 4);
        assert_eq!(s.num_downs(), 2);
        assert_eq!(s.num_ups(), 2);
        assert_eq!(s.transition_cycles(), vec![100, 200]);
    }

    #[test]
    fn same_cycle_flap_orders_down_before_up() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let ch = ft.up_channel(1, 1);
        let mut s = ChurnSchedule::new();
        s.revive_channel(70, ch);
        s.kill_channel(70, ch);
        let sorted = s.sorted_events();
        assert_eq!(sorted.len(), 2);
        assert_eq!(sorted[0].transition, Transition::Down);
        assert_eq!(sorted[1].transition, Transition::Up, "revival wins");
    }

    #[test]
    fn from_fault_set_expands_switches() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        let s = FaultSchedule::from_fault_set(300, ft.topology(), &faults);
        // Top switch 0 has r = 5 up + 5 down incident channels.
        assert_eq!(s.len(), 10);
        assert!(s.sorted_events().iter().all(|e| e.cycle == 300));
    }

    #[test]
    fn flapping_links_is_deterministic_and_balanced() {
        let ft = Ftree::new(3, 9, 4).unwrap();
        let a = ChurnSchedule::flapping_links(ft.topology(), 2, 100, 40, 2_000, 7);
        let b = ChurnSchedule::flapping_links(ft.topology(), 2, 100, 40, 2_000, 7);
        assert_eq!(a, b, "equal seeds give identical schedules");
        assert!(!a.is_empty(), "2k cycles at mtbf 100 must produce events");
        // Downs and ups alternate per channel starting with a down, so per
        // channel: ups == downs or downs == ups + 1.
        use std::collections::HashMap;
        let mut per_channel: HashMap<ChannelId, (usize, usize)> = HashMap::new();
        for e in a.sorted_events() {
            assert!(e.cycle < 2_000);
            let entry = per_channel.entry(e.channel).or_default();
            match e.transition {
                Transition::Down => entry.0 += 1,
                Transition::Up => entry.1 += 1,
            }
        }
        for (ch, (downs, ups)) in per_channel {
            assert!(
                downs == ups || downs == ups + 1,
                "channel {}: {downs} downs vs {ups} ups",
                ch.0
            );
        }
        let c = ChurnSchedule::flapping_links(ft.topology(), 2, 100, 40, 2_000, 8);
        assert_ne!(a, c, "different seeds should (generically) differ");
    }

    #[test]
    fn flapping_links_clamps_link_count_and_horizon() {
        let ft = Ftree::new(1, 1, 1).unwrap();
        let s = ChurnSchedule::flapping_links(ft.topology(), 99, 10, 5, 100, 0);
        let cables = 2; // 1 leaf cable + 1 uplink cable
        let distinct: std::collections::BTreeSet<ChannelId> =
            s.sorted_events().iter().map(|e| e.channel).collect();
        assert!(distinct.len() <= 2 * cables);
        // Degenerate horizon: no events fit.
        let empty = ChurnSchedule::flapping_links(ft.topology(), 2, 10, 5, 1, 0);
        assert!(empty.sorted_events().iter().all(|e| e.cycle < 1));
    }
}
