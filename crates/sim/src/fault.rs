//! Mid-run fault events: channels dying at a scheduled cycle.
//!
//! A [`FaultSchedule`] is passed alongside the workload (the [`crate::SimConfig`]
//! stays `Copy`); the engine marks each scheduled channel dead at the start
//! of its cycle. Dead channels grant no packets, so traffic routed over them
//! stalls until the TTL/retry machinery (see [`crate::SimConfig::ttl_cycles`])
//! drops or re-routes it — exactly the degraded operation the E17
//! experiment measures.

use ftclos_topo::{ChannelId, FaultSet, FaultyView, Topology};
use serde::{Deserialize, Serialize};

/// One channel death.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle at the start of which the channel goes dead.
    pub cycle: u64,
    /// The dying directed channel.
    pub channel: ChannelId,
}

/// A set of scheduled channel deaths for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Empty schedule (a fault-free run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Kill one directed channel at `cycle`.
    pub fn kill_channel(&mut self, cycle: u64, channel: ChannelId) -> &mut Self {
        self.events.push(FaultEvent { cycle, channel });
        self
    }

    /// Kill a whole cable at `cycle`: the channel and its reverse.
    pub fn kill_link(&mut self, cycle: u64, topo: &Topology, channel: ChannelId) -> &mut Self {
        self.kill_channel(cycle, channel);
        if let Some(rev) = topo.reverse(channel) {
            self.kill_channel(cycle, rev);
        }
        self
    }

    /// Apply a whole static [`FaultSet`] at `cycle` (failed switches expand
    /// to their incident channels, as in [`FaultyView`]).
    pub fn from_fault_set(cycle: u64, topo: &Topology, faults: &FaultSet) -> Self {
        let view = FaultyView::new(topo, faults);
        let mut schedule = Self::new();
        for c in topo.channel_ids() {
            if !view.channel_alive(c) {
                schedule.kill_channel(cycle, c);
            }
        }
        schedule
    }

    /// The scheduled events, sorted by cycle (stable for equal cycles).
    pub fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut v = self.events.clone();
        v.sort_by_key(|e| e.cycle);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_topo::Ftree;

    #[test]
    fn schedule_builders() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut s = FaultSchedule::new();
        assert!(s.is_empty());
        s.kill_link(100, ft.topology(), ft.up_channel(0, 0));
        assert_eq!(s.len(), 2, "cable = both directions");
        s.kill_channel(50, ft.down_channel(1, 2));
        let sorted = s.sorted_events();
        assert_eq!(sorted[0].cycle, 50);
        assert_eq!(sorted.last().unwrap().cycle, 100);
    }

    #[test]
    fn from_fault_set_expands_switches() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mut faults = FaultSet::new();
        faults.fail_switch(ft.top(0));
        let s = FaultSchedule::from_fault_set(300, ft.topology(), &faults);
        // Top switch 0 has r = 5 up + 5 down incident channels.
        assert_eq!(s.len(), 10);
        assert!(s.sorted_events().iter().all(|e| e.cycle == 300));
    }
}
