//! Parallel batch simulation: injection-rate sweeps for throughput/latency
//! curves (the load-latency plots standard in interconnect evaluation).

use crate::config::SimConfig;
use crate::engine::Simulator;
use crate::policy::Policy;
use crate::workload::Workload;
use ftclos_topo::Topology;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One point of a load sweep.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Offered load (packets/cycle/source).
    pub offered: f64,
    /// Accepted throughput (packets/cycle/source).
    pub accepted: f64,
    /// Mean end-to-end latency in cycles.
    pub mean_latency: f64,
}

/// Sweep offered injection rates in parallel. Each rate runs an independent
/// simulation with a rate-derived seed, so results are reproducible and
/// thread-count independent.
pub fn sweep_injection_rates(
    topo: &Topology,
    cfg: SimConfig,
    make_policy: impl Fn() -> Policy + Sync,
    make_workload: impl Fn(f64) -> Workload + Sync,
    rates: &[f64],
    seed: u64,
) -> Vec<ThroughputPoint> {
    rates
        .par_iter()
        .enumerate()
        .map(|(i, &rate)| {
            let mut sim = Simulator::new(topo, cfg, make_policy());
            let stats = sim.run(&make_workload(rate), seed.wrapping_add(i as u64 * 7919));
            ThroughputPoint {
                offered: rate,
                accepted: stats.accepted_throughput(),
                mean_latency: stats.mean_latency(),
            }
        })
        .collect()
}

/// Like [`sweep_injection_rates`], but each worker is isolated: a panic or
/// [`crate::SimError`] in one rate's simulation is captured as an `Err`
/// string for that point instead of taking down the whole sweep. Use this
/// when sweeping configurations that may be degenerate (e.g. generated
/// fault/retry matrices).
pub fn sweep_injection_rates_isolated(
    topo: &Topology,
    cfg: SimConfig,
    make_policy: impl Fn() -> Policy + Sync,
    make_workload: impl Fn(f64) -> Workload + Sync,
    rates: &[f64],
    seed: u64,
) -> Vec<Result<ThroughputPoint, String>> {
    rates
        .par_iter()
        .enumerate()
        .map(|(i, &rate)| {
            let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut sim = Simulator::new(topo, cfg, make_policy());
                sim.try_run(&make_workload(rate), seed.wrapping_add(i as u64 * 7919))
            }));
            match run {
                Ok(Ok(stats)) => Ok(ThroughputPoint {
                    offered: rate,
                    accepted: stats.accepted_throughput(),
                    mean_latency: stats.mean_latency(),
                }),
                Ok(Err(e)) => Err(e.to_string()),
                Err(panic) => Err(panic_message(panic)),
            }
        })
        .collect()
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("worker panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("worker panicked: {s}")
    } else {
        "worker panicked".to_string()
    }
}

/// Saturation throughput: the accepted throughput at offered load 1.0.
pub fn saturation_throughput(
    topo: &Topology,
    cfg: SimConfig,
    policy: Policy,
    make_workload: impl Fn(f64) -> Workload,
    seed: u64,
) -> f64 {
    let mut sim = Simulator::new(topo, cfg, policy);
    sim.run(&make_workload(1.0), seed).accepted_throughput()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::YuanDeterministic;
    use ftclos_topo::Ftree;
    use ftclos_traffic::patterns;

    #[test]
    fn sweep_is_monotone_under_capacity() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 500,
            ..SimConfig::default()
        };
        let points = sweep_injection_rates(
            ft.topology(),
            cfg,
            || Policy::from_single_path(&router),
            |rate| Workload::permutation(&perm, rate),
            &[0.2, 0.5, 0.9],
            1,
        );
        assert_eq!(points.len(), 3);
        // Nonblocking fabric: accepted tracks offered.
        for p in &points {
            assert!(
                (p.accepted - p.offered).abs() < 0.07,
                "offered {} accepted {}",
                p.offered,
                p.accepted
            );
        }
    }

    #[test]
    fn isolated_sweep_quarantines_failing_workers() {
        // A policy that panics for one specific rate: that point comes back
        // as Err, the others still succeed.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let cfg = SimConfig {
            warmup_cycles: 50,
            measure_cycles: 200,
            ..SimConfig::default()
        };
        let results = sweep_injection_rates_isolated(
            ft.topology(),
            cfg,
            || Policy::from_single_path(&router),
            |rate| {
                if (rate - 0.5).abs() < 1e-9 {
                    panic!("synthetic workload failure at rate {rate}");
                }
                Workload::permutation(&perm, rate)
            },
            &[0.2, 0.5, 0.9],
            1,
        );
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(err.contains("synthetic workload failure"), "{err}");
        assert!(results[2].is_ok());
    }

    #[test]
    fn isolated_sweep_reports_config_errors() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let bad = SimConfig {
            packet_flits: 0,
            ..SimConfig::default()
        };
        let results = sweep_injection_rates_isolated(
            ft.topology(),
            bad,
            || Policy::from_single_path(&router),
            |rate| Workload::permutation(&perm, rate),
            &[0.5],
            1,
        );
        let err = results[0].as_ref().unwrap_err();
        assert!(err.contains("packet_flits"), "{err}");
    }

    #[test]
    fn saturation_of_nonblocking_is_high() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 4);
        let cfg = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 500,
            ..SimConfig::default()
        };
        let sat = saturation_throughput(
            ft.topology(),
            cfg,
            Policy::from_single_path(&router),
            |rate| Workload::permutation(&perm, rate),
            2,
        );
        assert!(sat > 0.9, "saturation {sat}");
    }
}
