//! Path-selection policies: how a packet gets its route at injection time.
//!
//! All policies precompute candidate paths per (src, dst) pair so the hot
//! simulation loop does no routing work beyond an index choice. Adaptivity
//! happens **only at the source switch** — for `ftree(n+m, r)` that is the
//! only place a fat-tree has any (paper Section V).

use crate::error::SimError;
use ftclos_routing::{ObliviousMultipath, RouteAssignment, SinglePathRouter};
use ftclos_topo::{ChannelId, NodeId, Topology};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

type PathArc = Arc<[ChannelId]>;

/// How the next packet of a pair picks among its candidate paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Choice {
    /// Single candidate (deterministic / pattern-fixed).
    Fixed,
    /// Round-robin across candidates (oblivious deterministic spreading).
    RoundRobin,
    /// Uniform random candidate per packet (oblivious random spreading).
    Random,
    /// Least downstream queue occupancy of the candidate's first switch
    /// uplink, ties broken uniformly at random (local queue-adaptive).
    QueueAdaptive,
    /// Ablation variant of [`Choice::QueueAdaptive`] with deterministic
    /// lowest-index tie-breaking — demonstrably herds whole fabrics onto
    /// the low-index top switches and collapses throughput.
    QueueAdaptiveFirst,
}

/// Path selection policy for the simulator.
#[derive(Clone, Debug)]
pub struct Policy {
    options: HashMap<(u32, u32), Vec<PathArc>>,
    counters: HashMap<(u32, u32), u64>,
    choice: Choice,
    /// Per-channel admission bitmap (`true` = usable); `None` admits all.
    /// Candidates crossing an unadmitted channel are skipped by `pick` —
    /// the hook the churn re-planning modes drive mid-run.
    live_mask: Option<Vec<bool>>,
}

impl Policy {
    fn from_options(options: HashMap<(u32, u32), Vec<PathArc>>, choice: Choice) -> Self {
        Self {
            options,
            counters: HashMap::new(),
            choice,
            live_mask: None,
        }
    }

    /// Restrict future picks to candidates whose every channel is admitted
    /// by `mask` (indexed by channel id; `None` lifts the restriction).
    /// Packets already in flight keep their chosen paths.
    pub fn set_live_mask(&mut self, mask: Option<&[bool]>) {
        self.live_mask = mask.map(<[bool]>::to_vec);
    }

    /// One fixed path per pair, precomputed from a single-path router for
    /// every ordered leaf pair.
    pub fn from_single_path<R: SinglePathRouter + ?Sized>(router: &R) -> Self {
        let ports = router.ports();
        let mut options = HashMap::with_capacity((ports as usize) * (ports as usize - 1));
        for s in 0..ports {
            for d in 0..ports {
                if s == d {
                    continue;
                }
                let path: PathArc = router
                    .route(ftclos_traffic::SdPair::new(s, d))
                    .channels()
                    .to_vec()
                    .into();
                options.insert((s, d), vec![path]);
            }
        }
        Self::from_options(options, Choice::Fixed)
    }

    /// Fixed paths from a pattern-level assignment (adaptive/centralized
    /// routers). Pairs absent from the assignment cannot inject.
    pub fn from_assignment(assignment: &RouteAssignment) -> Self {
        let mut options = HashMap::with_capacity(assignment.len());
        for (pair, path) in assignment.routes() {
            let arc: PathArc = path.channels().to_vec().into();
            options.insert((pair.src, pair.dst), vec![arc]);
        }
        Self::from_options(options, Choice::Fixed)
    }

    /// Pin explicit `(src, dst, path)` routes — the witness-injection
    /// entry point (see `crate::witness`): callers hand over raw channel
    /// sequences (e.g. the paths attributing a CDG witness cycle), so every
    /// route is validated against the topology instead of trusted.
    ///
    /// # Errors
    /// [`SimError::PinnedPath`] when a route's source/destination is not a
    /// leaf of the topology, a channel id is out of range, consecutive
    /// channels do not share a node, the endpoints do not match the pair,
    /// or the same pair is pinned twice.
    pub fn from_pinned<'a, I>(topo: &Topology, routes: I) -> Result<Self, SimError>
    where
        I: IntoIterator<Item = (u32, u32, &'a [ChannelId])>,
    {
        let mut options = HashMap::new();
        for (src, dst, channels) in routes {
            let err = |detail: String| SimError::PinnedPath { src, dst, detail };
            let leaf = |port: u32, role: &str| -> Result<NodeId, SimError> {
                let node = NodeId(port);
                if (port as usize) < topo.num_nodes() && topo.kind(node).is_leaf() {
                    Ok(node)
                } else {
                    Err(err(format!("{role} port {port} is not a leaf node")))
                }
            };
            let s = leaf(src, "source")?;
            let d = leaf(dst, "destination")?;
            if src == dst {
                return Err(err("self pairs deliver instantly, nothing to pin".into()));
            }
            for &c in channels {
                if c.index() >= topo.num_channels() {
                    return Err(err(format!("channel {c} is out of range")));
                }
            }
            let (Some(&first), Some(&last)) = (channels.first(), channels.last()) else {
                return Err(err("pinned path is empty".into()));
            };
            if topo.channel(first).src != s {
                return Err(err(format!(
                    "first hop {first} does not leave the source leaf"
                )));
            }
            if topo.channel(last).dst != d {
                return Err(err(format!(
                    "last hop {last} does not enter the destination leaf"
                )));
            }
            for w in channels.windows(2) {
                if topo.channel(w[0]).dst != topo.channel(w[1]).src {
                    return Err(err(format!("hops {} -> {} are not adjacent", w[0], w[1])));
                }
            }
            let arc: PathArc = channels.to_vec().into();
            if options.insert((src, dst), vec![arc]).is_some() {
                return Err(err("pair is pinned twice".into()));
            }
        }
        Ok(Self::from_options(options, Choice::Fixed))
    }

    /// Oblivious multipath: all candidate paths per pair, spread per packet.
    pub fn from_multipath(router: &ObliviousMultipath<'_>, random: bool) -> Self {
        let ports = router.ports();
        let mut options = HashMap::new();
        for s in 0..ports {
            for d in 0..ports {
                if s == d {
                    continue;
                }
                let paths: Vec<PathArc> = router
                    .paths(ftclos_traffic::SdPair::new(s, d))
                    .into_iter()
                    .map(|p| PathArc::from(p.channels().to_vec()))
                    .collect();
                options.insert((s, d), paths);
            }
        }
        Self::from_options(
            options,
            if random {
                Choice::Random
            } else {
                Choice::RoundRobin
            },
        )
    }

    /// Local queue-adaptive selection over the multipath candidates: the
    /// packet takes the candidate whose *second* channel (the source
    /// switch's uplink) currently has the shortest downstream queue.
    pub fn queue_adaptive(router: &ObliviousMultipath<'_>) -> Self {
        let mut p = Self::from_multipath(router, false);
        p.choice = Choice::QueueAdaptive;
        p
    }

    /// Ablation: queue-adaptive with deterministic lowest-index
    /// tie-breaking (see the `ablation` experiment binary).
    pub fn queue_adaptive_deterministic_ties(router: &ObliviousMultipath<'_>) -> Self {
        let mut p = Self::from_multipath(router, false);
        p.choice = Choice::QueueAdaptiveFirst;
        p
    }

    /// Whether the pair can be routed at all.
    pub fn can_route(&self, src: u32, dst: u32) -> bool {
        src == dst || self.options.contains_key(&(src, dst))
    }

    /// Pick the path for the next packet of `(src, dst)`.
    ///
    /// `queue_len(channel)` exposes current downstream queue occupancy for
    /// the queue-adaptive policy; `rng` drives random spreading.
    pub fn pick<R: Rng>(
        &mut self,
        src: u32,
        dst: u32,
        queue_len: impl Fn(ChannelId) -> usize,
        rng: &mut R,
    ) -> Option<PathArc> {
        if src == dst {
            return Some(Arc::from(Vec::new()));
        }
        let candidates = self.options.get(&(src, dst))?;
        // Candidate indices admitted by the live mask (all, when unset).
        let live: Vec<usize> = match self.live_mask.as_deref() {
            None => (0..candidates.len()).collect(),
            Some(mask) => candidates
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    p.iter()
                        .all(|c| mask.get(c.index()).copied().unwrap_or(true))
                })
                .map(|(i, _)| i)
                .collect(),
        };
        if live.is_empty() {
            return None; // every candidate crosses an unadmitted channel
        }
        let idx = match self.choice {
            Choice::Fixed => live[0],
            Choice::RoundRobin => {
                let counter = self.counters.entry((src, dst)).or_insert(0);
                let i = (*counter % live.len() as u64) as usize;
                *counter += 1;
                live[i]
            }
            Choice::Random => live[rng.gen_range(0..live.len())],
            Choice::QueueAdaptive => {
                // Shortest local uplink queue; ties broken uniformly at
                // random (deterministic tie-breaks herd every switch onto
                // the same low-index top and collapse throughput). One
                // running-minimum pass over the (non-empty) live set — no
                // fallback index can silently pick a masked-out candidate.
                let occupancy = |p: &PathArc| {
                    // Same-switch candidates have 2 hops; uplink is index 1.
                    let probe = if p.len() >= 2 { p[1] } else { p[0] };
                    queue_len(probe)
                };
                let mut best = usize::MAX;
                let mut minima: Vec<usize> = Vec::new();
                for &i in &live {
                    let occ = occupancy(&candidates[i]);
                    if occ < best {
                        best = occ;
                        minima.clear();
                    }
                    if occ == best {
                        minima.push(i);
                    }
                }
                minima[rng.gen_range(0..minima.len())]
            }
            Choice::QueueAdaptiveFirst => {
                let occupancy = |p: &PathArc| {
                    let probe = if p.len() >= 2 { p[1] } else { p[0] };
                    queue_len(probe)
                };
                let mut best_i = live[0];
                let mut best = occupancy(&candidates[best_i]);
                for &i in &live[1..] {
                    let occ = occupancy(&candidates[i]);
                    if occ < best {
                        best = occ;
                        best_i = i;
                    }
                }
                best_i
            }
        };
        Some(candidates[idx].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{SpreadPolicy, YuanDeterministic};
    use ftclos_topo::Ftree;
    use ftclos_traffic::SdPair;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(4)
    }

    #[test]
    fn single_path_policy_is_fixed() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let mut p = Policy::from_single_path(&router);
        let mut g = rng();
        let a = p.pick(0, 5, |_| 0, &mut g).unwrap();
        let b = p.pick(0, 5, |_| 0, &mut g).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(p.can_route(0, 0));
        assert_eq!(p.pick(0, 0, |_| 0, &mut g).unwrap().len(), 0);
    }

    #[test]
    fn from_pinned_replays_exact_routes() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let r05 = router.route(SdPair::new(0, 5)).channels().to_vec();
        let r92 = router.route(SdPair::new(9, 2)).channels().to_vec();
        let mut p = Policy::from_pinned(
            ft.topology(),
            [(0, 5, r05.as_slice()), (9, 2, r92.as_slice())],
        )
        .unwrap();
        let mut g = rng();
        assert_eq!(p.pick(0, 5, |_| 0, &mut g).unwrap().as_ref(), &r05[..]);
        assert_eq!(p.pick(9, 2, |_| 0, &mut g).unwrap().as_ref(), &r92[..]);
        assert!(!p.can_route(5, 0), "only pinned pairs are routable");
    }

    #[test]
    fn from_pinned_rejects_malformed_routes() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let topo = ft.topology();
        let router = YuanDeterministic::new(&ft).unwrap();
        let good = router.route(SdPair::new(0, 5)).channels().to_vec();
        let detail = |res: Result<Policy, SimError>| match res.unwrap_err() {
            SimError::PinnedPath { detail, .. } => detail,
            e => panic!("expected PinnedPath, got {e}"),
        };
        // Empty path.
        let d = detail(Policy::from_pinned(topo, [(0, 5, &[][..])]));
        assert!(d.contains("empty"), "{d}");
        // Self pair.
        let d = detail(Policy::from_pinned(topo, [(3, 3, good.as_slice())]));
        assert!(d.contains("self"), "{d}");
        // Source port that is not a leaf of this fabric.
        let d = detail(Policy::from_pinned(topo, [(999, 5, good.as_slice())]));
        assert!(d.contains("not a leaf"), "{d}");
        // Endpoint mismatch: the route for (0, 5) pinned under pair (2, 5).
        let d = detail(Policy::from_pinned(topo, [(2, 5, good.as_slice())]));
        assert!(d.contains("source leaf"), "{d}");
        // Discontinuity: drop a middle hop.
        let mut broken = good.clone();
        broken.remove(1);
        let d = detail(Policy::from_pinned(topo, [(0, 5, broken.as_slice())]));
        assert!(d.contains("adjacent"), "{d}");
        // Out-of-range channel id.
        let bogus = vec![ChannelId::INVALID];
        let d = detail(Policy::from_pinned(topo, [(0, 5, bogus.as_slice())]));
        assert!(d.contains("out of range"), "{d}");
        // Duplicate pair.
        let d = detail(Policy::from_pinned(
            topo,
            [(0, 5, good.as_slice()), (0, 5, good.as_slice())],
        ));
        assert!(d.contains("twice"), "{d}");
    }

    #[test]
    fn round_robin_cycles_candidates() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
        let mut p = Policy::from_multipath(&mp, false);
        let mut g = rng();
        let a = p.pick(0, 4, |_| 0, &mut g).unwrap();
        let b = p.pick(0, 4, |_| 0, &mut g).unwrap();
        let c = p.pick(0, 4, |_| 0, &mut g).unwrap();
        let d = p.pick(0, 4, |_| 0, &mut g).unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, d, "period 3");
    }

    #[test]
    fn queue_adaptive_avoids_long_queue() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
        let mut p = Policy::queue_adaptive(&mp);
        let mut g = rng();
        // Make the uplink to top 0 look congested.
        let busy = ft.up_channel(0, 0);
        let path = p
            .pick(0, 4, |c| if c == busy { 10 } else { 0 }, &mut g)
            .unwrap();
        assert_ne!(path[1], busy, "adaptive must dodge the long queue");
    }

    #[test]
    fn live_mask_filters_candidates() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let mut p = Policy::from_multipath(&mp, true);
        let mut g = rng();
        let num_channels = ft.topology().num_channels();
        // Exclude uplinks to tops 0 and 1: every pick must go through top 2.
        let mut mask = vec![true; num_channels];
        for v in 0..ft.r() {
            mask[ft.up_channel(v, 0).index()] = false;
            mask[ft.up_channel(v, 1).index()] = false;
        }
        p.set_live_mask(Some(&mask));
        for _ in 0..20 {
            let path = p.pick(0, 4, |_| 0, &mut g).unwrap();
            assert_eq!(path[1], ft.up_channel(0, 2));
        }
        // Excluding all uplinks leaves cross-switch pairs unroutable…
        for v in 0..ft.r() {
            mask[ft.up_channel(v, 2).index()] = false;
        }
        p.set_live_mask(Some(&mask));
        assert!(p.pick(0, 4, |_| 0, &mut g).is_none());
        // …until the mask is lifted.
        p.set_live_mask(None);
        assert!(p.pick(0, 4, |_| 0, &mut g).is_some());
    }

    #[test]
    fn unrouteable_pair_is_none() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let assignment = ftclos_routing::route_all(
            &router,
            &ftclos_traffic::Permutation::from_pairs(10, [ftclos_traffic::SdPair::new(0, 5)])
                .unwrap(),
        )
        .unwrap();
        let mut p = Policy::from_assignment(&assignment);
        let mut g = rng();
        assert!(p.pick(0, 5, |_| 0, &mut g).is_some());
        assert!(p.pick(1, 4, |_| 0, &mut g).is_none());
        assert!(!p.can_route(1, 4));
    }
}
