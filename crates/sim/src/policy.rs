//! Path-selection policies: how a packet gets its route at injection time.
//!
//! All policies precompute candidate paths per (src, dst) pair so the hot
//! simulation loop does no routing work beyond an index choice. Adaptivity
//! happens **only at the source switch** — for `ftree(n+m, r)` that is the
//! only place a fat-tree has any (paper Section V).

use ftclos_routing::{ObliviousMultipath, RouteAssignment, SinglePathRouter};
use ftclos_topo::ChannelId;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

type PathArc = Arc<[ChannelId]>;

/// How the next packet of a pair picks among its candidate paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Choice {
    /// Single candidate (deterministic / pattern-fixed).
    Fixed,
    /// Round-robin across candidates (oblivious deterministic spreading).
    RoundRobin,
    /// Uniform random candidate per packet (oblivious random spreading).
    Random,
    /// Least downstream queue occupancy of the candidate's first switch
    /// uplink, ties broken uniformly at random (local queue-adaptive).
    QueueAdaptive,
    /// Ablation variant of [`Choice::QueueAdaptive`] with deterministic
    /// lowest-index tie-breaking — demonstrably herds whole fabrics onto
    /// the low-index top switches and collapses throughput.
    QueueAdaptiveFirst,
}

/// Path selection policy for the simulator.
#[derive(Clone, Debug)]
pub struct Policy {
    options: HashMap<(u32, u32), Vec<PathArc>>,
    counters: HashMap<(u32, u32), u64>,
    choice: Choice,
    /// Per-channel admission bitmap (`true` = usable); `None` admits all.
    /// Candidates crossing an unadmitted channel are skipped by `pick` —
    /// the hook the churn re-planning modes drive mid-run.
    live_mask: Option<Vec<bool>>,
}

impl Policy {
    fn from_options(options: HashMap<(u32, u32), Vec<PathArc>>, choice: Choice) -> Self {
        Self {
            options,
            counters: HashMap::new(),
            choice,
            live_mask: None,
        }
    }

    /// Restrict future picks to candidates whose every channel is admitted
    /// by `mask` (indexed by channel id; `None` lifts the restriction).
    /// Packets already in flight keep their chosen paths.
    pub fn set_live_mask(&mut self, mask: Option<&[bool]>) {
        self.live_mask = mask.map(<[bool]>::to_vec);
    }

    /// One fixed path per pair, precomputed from a single-path router for
    /// every ordered leaf pair.
    pub fn from_single_path<R: SinglePathRouter + ?Sized>(router: &R) -> Self {
        let ports = router.ports();
        let mut options = HashMap::with_capacity((ports as usize) * (ports as usize - 1));
        for s in 0..ports {
            for d in 0..ports {
                if s == d {
                    continue;
                }
                let path: PathArc = router
                    .route(ftclos_traffic::SdPair::new(s, d))
                    .channels()
                    .to_vec()
                    .into();
                options.insert((s, d), vec![path]);
            }
        }
        Self::from_options(options, Choice::Fixed)
    }

    /// Fixed paths from a pattern-level assignment (adaptive/centralized
    /// routers). Pairs absent from the assignment cannot inject.
    pub fn from_assignment(assignment: &RouteAssignment) -> Self {
        let mut options = HashMap::with_capacity(assignment.len());
        for (pair, path) in assignment.routes() {
            let arc: PathArc = path.channels().to_vec().into();
            options.insert((pair.src, pair.dst), vec![arc]);
        }
        Self::from_options(options, Choice::Fixed)
    }

    /// Oblivious multipath: all candidate paths per pair, spread per packet.
    pub fn from_multipath(router: &ObliviousMultipath<'_>, random: bool) -> Self {
        let ports = router.ports();
        let mut options = HashMap::new();
        for s in 0..ports {
            for d in 0..ports {
                if s == d {
                    continue;
                }
                let paths: Vec<PathArc> = router
                    .paths(ftclos_traffic::SdPair::new(s, d))
                    .into_iter()
                    .map(|p| PathArc::from(p.channels().to_vec()))
                    .collect();
                options.insert((s, d), paths);
            }
        }
        Self::from_options(
            options,
            if random {
                Choice::Random
            } else {
                Choice::RoundRobin
            },
        )
    }

    /// Local queue-adaptive selection over the multipath candidates: the
    /// packet takes the candidate whose *second* channel (the source
    /// switch's uplink) currently has the shortest downstream queue.
    pub fn queue_adaptive(router: &ObliviousMultipath<'_>) -> Self {
        let mut p = Self::from_multipath(router, false);
        p.choice = Choice::QueueAdaptive;
        p
    }

    /// Ablation: queue-adaptive with deterministic lowest-index
    /// tie-breaking (see the `ablation` experiment binary).
    pub fn queue_adaptive_deterministic_ties(router: &ObliviousMultipath<'_>) -> Self {
        let mut p = Self::from_multipath(router, false);
        p.choice = Choice::QueueAdaptiveFirst;
        p
    }

    /// Whether the pair can be routed at all.
    pub fn can_route(&self, src: u32, dst: u32) -> bool {
        src == dst || self.options.contains_key(&(src, dst))
    }

    /// Pick the path for the next packet of `(src, dst)`.
    ///
    /// `queue_len(channel)` exposes current downstream queue occupancy for
    /// the queue-adaptive policy; `rng` drives random spreading.
    pub fn pick<R: Rng>(
        &mut self,
        src: u32,
        dst: u32,
        queue_len: impl Fn(ChannelId) -> usize,
        rng: &mut R,
    ) -> Option<PathArc> {
        if src == dst {
            return Some(Arc::from(Vec::new()));
        }
        let candidates = self.options.get(&(src, dst))?;
        // Candidate indices admitted by the live mask (all, when unset).
        let live: Vec<usize> = match self.live_mask.as_deref() {
            None => (0..candidates.len()).collect(),
            Some(mask) => candidates
                .iter()
                .enumerate()
                .filter(|(_, p)| {
                    p.iter()
                        .all(|c| mask.get(c.index()).copied().unwrap_or(true))
                })
                .map(|(i, _)| i)
                .collect(),
        };
        if live.is_empty() {
            return None; // every candidate crosses an unadmitted channel
        }
        let idx = match self.choice {
            Choice::Fixed => live[0],
            Choice::RoundRobin => {
                let counter = self.counters.entry((src, dst)).or_insert(0);
                let i = (*counter % live.len() as u64) as usize;
                *counter += 1;
                live[i]
            }
            Choice::Random => live[rng.gen_range(0..live.len())],
            Choice::QueueAdaptive => {
                // Shortest local uplink queue; ties broken uniformly at
                // random (deterministic tie-breaks herd every switch onto
                // the same low-index top and collapse throughput).
                let occupancy = |p: &PathArc| {
                    // Same-switch candidates have 2 hops; uplink is index 1.
                    let probe = if p.len() >= 2 { p[1] } else { p[0] };
                    queue_len(probe)
                };
                let best = live
                    .iter()
                    .map(|&i| occupancy(&candidates[i]))
                    .min()
                    .unwrap_or(0);
                let minima: Vec<usize> = live
                    .iter()
                    .copied()
                    .filter(|&i| occupancy(&candidates[i]) == best)
                    .collect();
                minima[rng.gen_range(0..minima.len())]
            }
            Choice::QueueAdaptiveFirst => live
                .iter()
                .copied()
                .min_by_key(|&i| {
                    let p = &candidates[i];
                    let probe = if p.len() >= 2 { p[1] } else { p[0] };
                    (queue_len(probe), i)
                })
                .unwrap_or(0),
        };
        Some(candidates[idx].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{SpreadPolicy, YuanDeterministic};
    use ftclos_topo::Ftree;
    use rand::SeedableRng;

    fn rng() -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(4)
    }

    #[test]
    fn single_path_policy_is_fixed() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let mut p = Policy::from_single_path(&router);
        let mut g = rng();
        let a = p.pick(0, 5, |_| 0, &mut g).unwrap();
        let b = p.pick(0, 5, |_| 0, &mut g).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(p.can_route(0, 0));
        assert_eq!(p.pick(0, 0, |_| 0, &mut g).unwrap().len(), 0);
    }

    #[test]
    fn round_robin_cycles_candidates() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
        let mut p = Policy::from_multipath(&mp, false);
        let mut g = rng();
        let a = p.pick(0, 4, |_| 0, &mut g).unwrap();
        let b = p.pick(0, 4, |_| 0, &mut g).unwrap();
        let c = p.pick(0, 4, |_| 0, &mut g).unwrap();
        let d = p.pick(0, 4, |_| 0, &mut g).unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, d, "period 3");
    }

    #[test]
    fn queue_adaptive_avoids_long_queue() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
        let mut p = Policy::queue_adaptive(&mp);
        let mut g = rng();
        // Make the uplink to top 0 look congested.
        let busy = ft.up_channel(0, 0);
        let path = p
            .pick(0, 4, |c| if c == busy { 10 } else { 0 }, &mut g)
            .unwrap();
        assert_ne!(path[1], busy, "adaptive must dodge the long queue");
    }

    #[test]
    fn live_mask_filters_candidates() {
        let ft = Ftree::new(2, 3, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let mut p = Policy::from_multipath(&mp, true);
        let mut g = rng();
        let num_channels = ft.topology().num_channels();
        // Exclude uplinks to tops 0 and 1: every pick must go through top 2.
        let mut mask = vec![true; num_channels];
        for v in 0..ft.r() {
            mask[ft.up_channel(v, 0).index()] = false;
            mask[ft.up_channel(v, 1).index()] = false;
        }
        p.set_live_mask(Some(&mask));
        for _ in 0..20 {
            let path = p.pick(0, 4, |_| 0, &mut g).unwrap();
            assert_eq!(path[1], ft.up_channel(0, 2));
        }
        // Excluding all uplinks leaves cross-switch pairs unroutable…
        for v in 0..ft.r() {
            mask[ft.up_channel(v, 2).index()] = false;
        }
        p.set_live_mask(Some(&mask));
        assert!(p.pick(0, 4, |_| 0, &mut g).is_none());
        // …until the mask is lifted.
        p.set_live_mask(None);
        assert!(p.pick(0, 4, |_| 0, &mut g).is_some());
    }

    #[test]
    fn unrouteable_pair_is_none() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let assignment = ftclos_routing::route_all(
            &router,
            &ftclos_traffic::Permutation::from_pairs(10, [ftclos_traffic::SdPair::new(0, 5)])
                .unwrap(),
        )
        .unwrap();
        let mut p = Policy::from_assignment(&assignment);
        let mut g = rng();
        assert!(p.pick(0, 5, |_| 0, &mut g).is_some());
        assert!(p.pick(1, 4, |_| 0, &mut g).is_none());
        assert!(!p.can_route(1, 4));
    }
}
