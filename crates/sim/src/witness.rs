//! Witness injection: dynamically reproduce a channel-dependency deadlock.
//!
//! The CDG analyzer (`ftclos-core::cdg`) proves deadlock freedom *statically*
//! (an acyclic channel-dependency graph, Dally–Seitz). When it instead emits
//! a witness cycle, this module closes the loop dynamically: pin one route
//! per cycle edge ([`PinnedRoute`], typically from
//! `ftclos_core::attribute_witness`), inject at line rate under finite
//! credits, and watch the circular wait wedge — the drain phase ends with
//! packets still in flight (`leftover_packets > 0`) while packet
//! conservation (`injected == delivered + abandoned + leftover`) still
//! holds. The same harness run with deadlock-free routes (e.g. any up*/down*
//! assignment over the same pairs) drains to zero, the control that shows
//! the stall is the cycle's fault and not the harness's.
//!
//! Mechanically the wedge is the classic credit circular wait: with
//! [`Arbiter::HolFifo`], a head-of-line packet may only advance onto
//! channel `c` if `c`'s downstream queue has space, and every queue on the
//! witness cycle fills with heads that each want the *next* cycle channel.
//! Delivery hops into leaves are never credit-gated, so non-cycle routes
//! keep draining.
//!
//! This crate stays independent of `ftclos-core`: routes arrive as plain
//! channel sequences, and the CDG→sim wiring lives in the CLI
//! (`ftclos deadlock --inject`).

use crate::config::Arbiter;
use crate::{Policy, SimConfig, SimError, SimStats, Simulator, Workload};
use ftclos_obs::{Noop, Recorder};
use ftclos_topo::{ChannelId, Topology};
use std::collections::HashSet;

/// One source→destination route pinned for injection, as raw channels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PinnedRoute {
    /// Source leaf port.
    pub src: u32,
    /// Destination leaf port.
    pub dst: u32,
    /// The full channel sequence from source leaf to destination leaf.
    pub channels: Vec<ChannelId>,
}

impl PinnedRoute {
    /// Pin `channels` for the pair `(src, dst)`. Validation happens at
    /// [`Policy::from_pinned`] time, inside [`run_pinned_injection`].
    pub fn new(src: u32, dst: u32, channels: Vec<ChannelId>) -> Self {
        Self { src, dst, channels }
    }
}

/// Outcome of a pinned-injection run.
#[derive(Clone, Debug)]
pub struct WitnessRun {
    /// Pairs actually pinned after first-per-source deduplication.
    pub pinned_pairs: usize,
    /// Full engine statistics (drain included).
    pub stats: SimStats,
}

impl WitnessRun {
    /// Did the run wedge? `true` when the drain phase gave up with packets
    /// still queued in the network — the dynamic signature of a
    /// channel-dependency deadlock under this pinned routing.
    pub fn wedged(&self) -> bool {
        self.stats.leftover_packets > 0
    }

    /// Packet conservation: `injected == delivered + abandoned + leftover`.
    /// Holds wedged or not — a deadlock strands packets, it does not lose
    /// them.
    pub fn conservation_ok(&self) -> bool {
        self.stats.conservation_ok()
    }
}

/// Run the witness-injection scenario: pin `routes`, inject at rate 1.0
/// from every pinned source for `cycles` cycles under `queue_capacity`
/// credits per queue, then drain. Duplicate sources keep their *first*
/// route (each leaf has one injection stream); `queue_capacity` should be
/// small (2–4) so the circular wait fills quickly.
///
/// # Errors
/// [`SimError::PinnedPath`] if a surviving route fails path validation,
/// [`SimError::Config`] if the derived configuration is rejected
/// (`queue_capacity == 0`), or any engine error from the run itself.
pub fn run_pinned_injection(
    topo: &Topology,
    routes: &[PinnedRoute],
    cycles: u64,
    queue_capacity: usize,
    seed: u64,
) -> Result<WitnessRun, SimError> {
    run_pinned_injection_recorded(topo, routes, cycles, queue_capacity, seed, &Noop)
}

/// [`run_pinned_injection`] with instrumentation: the run records under the
/// engine's `sim.run` span and counters (see `Simulator::try_run_recorded`).
///
/// # Errors
/// As for [`run_pinned_injection`].
pub fn run_pinned_injection_recorded<R: Recorder>(
    topo: &Topology,
    routes: &[PinnedRoute],
    cycles: u64,
    queue_capacity: usize,
    seed: u64,
    rec: &R,
) -> Result<WitnessRun, SimError> {
    run_pinned_injection_watchdog_recorded(topo, routes, cycles, queue_capacity, 0, seed, rec)
}

/// [`run_pinned_injection`] with the bounded-progress stall watchdog armed:
/// instead of letting a wedged run spin through the drain phase to the
/// cycle cap and come back as mere `leftover_packets`, the engine aborts
/// after `watchdog` progress-free cycles with [`SimError::Stalled`]
/// carrying the strand graph — every blocked head packet, the channel it
/// holds, the channel it waits for, and the credit wait-for cycle. Pass
/// `watchdog = 0` to disable (identical to [`run_pinned_injection`]).
///
/// # Errors
/// As for [`run_pinned_injection`], plus [`SimError::Stalled`] when the
/// watchdog fires — the *expected* outcome when the pinned routes realize a
/// cyclic channel dependency.
pub fn run_pinned_injection_watchdog(
    topo: &Topology,
    routes: &[PinnedRoute],
    cycles: u64,
    queue_capacity: usize,
    watchdog: u64,
    seed: u64,
) -> Result<WitnessRun, SimError> {
    run_pinned_injection_watchdog_recorded(
        topo,
        routes,
        cycles,
        queue_capacity,
        watchdog,
        seed,
        &Noop,
    )
}

/// [`run_pinned_injection_watchdog`] with instrumentation (see
/// [`run_pinned_injection_recorded`]).
///
/// # Errors
/// As for [`run_pinned_injection_watchdog`].
pub fn run_pinned_injection_watchdog_recorded<R: Recorder>(
    topo: &Topology,
    routes: &[PinnedRoute],
    cycles: u64,
    queue_capacity: usize,
    watchdog: u64,
    seed: u64,
    rec: &R,
) -> Result<WitnessRun, SimError> {
    let mut seen = HashSet::new();
    let kept: Vec<&PinnedRoute> = routes.iter().filter(|r| seen.insert(r.src)).collect();
    let policy = Policy::from_pinned(
        topo,
        kept.iter().map(|r| (r.src, r.dst, r.channels.as_slice())),
    )?;
    let pairs: Vec<(u32, u32)> = kept.iter().map(|r| (r.src, r.dst)).collect();
    let ports = topo.leaves().count() as u32;
    let workload = Workload::fixed_pairs(ports, &pairs, 1.0);
    let cfg = SimConfig {
        warmup_cycles: 0,
        measure_cycles: cycles,
        queue_capacity,
        drain: true,
        arbiter: Arbiter::HolFifo,
        stall_watchdog: watchdog,
        ..SimConfig::default()
    };
    let stats = Simulator::new(topo, cfg, policy).try_run_recorded(&workload, seed, rec)?;
    Ok(WitnessRun {
        pinned_pairs: pairs.len(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{DModK, SinglePathRouter};
    use ftclos_topo::Ftree;
    use ftclos_traffic::SdPair;

    /// Hand-built "valley" routes on `ftree(1, 1, 4)` (one port per bottom,
    /// one top): the cycle channels are `up(v, 0)` and `down(0, v+1)`, and
    /// route `v -> (v+3) % 4` walks three arcs of the 8-channel cycle
    /// (`leaf_up, up(v), down(v+1), up(v+1), down(v+2), up(v+2), down(v+3),
    /// leaf_down`). Three arcs, not two: with shorter arcs most queued
    /// packets are one hop from their exit and the round-robin arbiters
    /// always find an escapee — the wedge needs a majority of heads that
    /// *continue* around the cycle.
    fn valley_routes(ft: &Ftree) -> Vec<PinnedRoute> {
        let r = 4;
        (0..r)
            .map(|v| {
                let w = (v + 3) % r;
                let mut channels = vec![ft.leaf_up_channel(v, 0)];
                for k in 0..3 {
                    channels.push(ft.up_channel((v + k) % r, 0));
                    channels.push(ft.down_channel(0, (v + k + 1) % r));
                }
                channels.push(ft.leaf_down_channel(w, 0));
                PinnedRoute::new(v as u32, w as u32, channels)
            })
            .collect()
    }

    #[test]
    fn valley_cycle_wedges_and_conserves() {
        let ft = Ftree::new(1, 1, 4).unwrap();
        let run = run_pinned_injection(ft.topology(), &valley_routes(&ft), 200, 2, 0xDEAD).unwrap();
        assert_eq!(run.pinned_pairs, 4);
        assert!(
            run.wedged(),
            "valley cycle must credit-stall: {:?}",
            run.stats
        );
        assert!(run.conservation_ok(), "stranded, not lost: {:?}", run.stats);
        assert!(run.stats.injected_total > 0);
    }

    #[test]
    fn watchdog_turns_wedge_into_stalled_diagnosis() {
        // Same valley cycle as above, but with the watchdog armed: instead
        // of spinning the drain phase to the cap and reporting leftover
        // packets, the run aborts with the strand graph. The wait-for cycle
        // must be non-empty (the stall is the circular credit wait) and
        // every cycle channel must be one of the valley's up/down channels.
        let ft = Ftree::new(1, 1, 4).unwrap();
        let err =
            run_pinned_injection_watchdog(ft.topology(), &valley_routes(&ft), 200, 2, 64, 0xDEAD)
                .unwrap_err();
        let SimError::Stalled(report) = err else {
            panic!("expected Stalled, got {err}");
        };
        assert!(report.in_flight > 0);
        assert!(!report.strands.is_empty(), "strand graph must be populated");
        assert!(
            !report.wait_cycle.is_empty(),
            "valley wedge is a circular credit wait: {report:?}"
        );
        assert!(report.stranded_packets() > 0);
        // Each cycle member is held by some strand that waits for the next.
        for (i, &c) in report.wait_cycle.iter().enumerate() {
            let next = report.wait_cycle[(i + 1) % report.wait_cycle.len()];
            assert!(
                report
                    .strands
                    .iter()
                    .any(|s| s.holds == Some(c) && s.waits_for == next),
                "cycle edge {c:?} -> {next:?} has no backing strand"
            );
        }
        // Deterministic: the same run yields the same diagnosis.
        let err2 =
            run_pinned_injection_watchdog(ft.topology(), &valley_routes(&ft), 200, 2, 64, 0xDEAD)
                .unwrap_err();
        assert_eq!(SimError::Stalled(report), err2);
    }

    #[test]
    fn drain_cap_with_armed_watchdog_reports_stall() {
        // Regression: a watchdog too long to fire before the drain cap used
        // to let a wedged run exit silently through the cap, coming back as
        // mere leftover packets. The cap exit must report the stall instead
        // when the watchdog was armed and mid-freeze.
        let ft = Ftree::new(1, 1, 4).unwrap();
        let err = run_pinned_injection_watchdog(
            ft.topology(),
            &valley_routes(&ft),
            50,
            2,
            2 * SimConfig::DRAIN_CAP, // cannot reach the threshold in time
            0xDEAD,
        )
        .unwrap_err();
        let SimError::Stalled(report) = err else {
            panic!("expected Stalled at the drain cap, got {err}");
        };
        assert_eq!(report.cycle, 50 + SimConfig::DRAIN_CAP);
        assert!(report.in_flight > 0);
        assert!(
            !report.wait_cycle.is_empty(),
            "valley wedge is a circular credit wait: {report:?}"
        );
    }

    #[test]
    fn watchdog_stays_quiet_on_clean_runs() {
        // Up*/down* control routes drain completely; the watchdog must not
        // fire and the statistics must match the unwatched run exactly.
        let ft = Ftree::new(1, 1, 4).unwrap();
        let router = DModK::new(&ft);
        let routes: Vec<PinnedRoute> = valley_routes(&ft)
            .into_iter()
            .map(|r| {
                let path = router.route(SdPair::new(r.src, r.dst));
                PinnedRoute::new(r.src, r.dst, path.channels().to_vec())
            })
            .collect();
        let watched =
            run_pinned_injection_watchdog(ft.topology(), &routes, 200, 2, 64, 0xDEAD).unwrap();
        let plain = run_pinned_injection(ft.topology(), &routes, 200, 2, 0xDEAD).unwrap();
        assert_eq!(watched.stats, plain.stats);
        assert!(!watched.wedged());
    }

    #[test]
    fn updown_control_drains_clean() {
        // Same pairs, but routed up*/down* by DModK: with one top there is
        // exactly one minimal path per pair, no valley, no cycle — the
        // drain phase must empty the network completely.
        let ft = Ftree::new(1, 1, 4).unwrap();
        let router = DModK::new(&ft);
        let routes: Vec<PinnedRoute> = valley_routes(&ft)
            .into_iter()
            .map(|r| {
                let path = router.route(SdPair::new(r.src, r.dst));
                PinnedRoute::new(r.src, r.dst, path.channels().to_vec())
            })
            .collect();
        let run = run_pinned_injection(ft.topology(), &routes, 200, 2, 0xDEAD).unwrap();
        assert_eq!(run.stats.leftover_packets, 0, "{:?}", run.stats);
        assert!(!run.wedged());
        assert!(run.conservation_ok());
        assert!(run.stats.delivered_total > 0);
    }

    #[test]
    fn duplicate_sources_keep_first_route() {
        let ft = Ftree::new(1, 1, 4).unwrap();
        let router = DModK::new(&ft);
        let path = |s: u32, d: u32| router.route(SdPair::new(s, d)).channels().to_vec();
        let routes = vec![
            PinnedRoute::new(0, 2, path(0, 2)),
            PinnedRoute::new(0, 3, path(0, 3)), // same source: dropped
            PinnedRoute::new(1, 3, path(1, 3)),
        ];
        let run = run_pinned_injection(ft.topology(), &routes, 50, 2, 1).unwrap();
        assert_eq!(run.pinned_pairs, 2);
        assert!(!run.wedged());
    }

    #[test]
    fn bad_route_is_a_typed_error() {
        let ft = Ftree::new(1, 1, 4).unwrap();
        // Discontinuous: two uplinks in a row share no node.
        let routes = vec![PinnedRoute::new(
            0,
            2,
            vec![ft.leaf_up_channel(0, 0), ft.leaf_up_channel(1, 0)],
        )];
        let err = run_pinned_injection(ft.topology(), &routes, 10, 2, 1).unwrap_err();
        assert!(
            matches!(err, SimError::PinnedPath { src: 0, dst: 2, .. }),
            "{err}"
        );
    }
}
