//! Churn-run instrumentation: replan modes, per-epoch statistics, and
//! time-to-reconverge measurement.
//!
//! A churn run (see [`crate::Simulator::try_run_churn`]) slices the
//! simulation into **epochs** at every cycle where at least one liveness
//! transition applies. For each epoch the engine records the injected /
//! delivered / lost counters and, post-run, the **time to reconverge**: the
//! number of cycles after the transition until delivered throughput
//! (averaged over a sliding [`ChurnConfig::recovery_window`]) returns to
//! within [`ChurnConfig::epsilon`] of the pre-churn steady state.
//!
//! The [`ReplanMode`] knob selects how the path policy reacts to
//! transitions: not at all (`Pinned`), instantly (`PerCycle` — hysteresis
//! with `K = 0`), or damped (`Hysteresis` — a flapped link is readmitted
//! only after `K` stable cycles, via
//! [`ftclos_routing::LinkAdmission`]).

use serde::{Deserialize, Serialize};

/// How the simulator's path policy reacts to liveness transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplanMode {
    /// Never re-plan: paths picked at injection ignore liveness entirely
    /// (dead channels still grant nothing — packets stall and time out).
    Pinned,
    /// Re-plan every cycle with no damping: a channel is masked out the
    /// cycle it dies and readmitted the cycle it revives. Equivalent to
    /// [`ReplanMode::Hysteresis`] with `k = 0`.
    PerCycle,
    /// Hysteresis re-planning: exclusion is immediate, readmission waits
    /// for `k` consecutive stable cycles.
    Hysteresis {
        /// Stable cycles required before a revived channel is readmitted.
        k: u64,
    },
}

impl ReplanMode {
    /// The hysteresis constant: `None` for pinned routing, `Some(0)` for
    /// per-cycle re-planning.
    pub fn hysteresis_k(self) -> Option<u64> {
        match self {
            ReplanMode::Pinned => None,
            ReplanMode::PerCycle => Some(0),
            ReplanMode::Hysteresis { k } => Some(k),
        }
    }
}

/// Knobs for a churn run, passed alongside the [`crate::SimConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// How the path policy reacts to transitions.
    pub mode: ReplanMode,
    /// Relative throughput tolerance for "reconverged": an epoch has
    /// reconverged once a sliding window delivers at least
    /// `(1 - epsilon) * steady_rate` packets per cycle.
    pub epsilon: f64,
    /// Width (cycles) of the sliding delivery window used both to measure
    /// the steady state and to detect reconvergence.
    pub recovery_window: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            mode: ReplanMode::PerCycle,
            epsilon: 0.1,
            recovery_window: 100,
        }
    }
}

/// Counters for one epoch: the interval between consecutive transition
/// cycles (the first epoch starts at cycle 0; the last ends at run end).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochStats {
    /// First cycle of the epoch.
    pub start: u64,
    /// One past the last cycle of the epoch.
    pub end: u64,
    /// `Down` transitions applied at `start` (0 for the initial epoch).
    pub downs: u64,
    /// `Up` transitions applied at `start`.
    pub ups: u64,
    /// Packets injected during the epoch.
    pub injected: u64,
    /// Packets delivered during the epoch.
    pub delivered: u64,
    /// Timeout events during the epoch.
    pub timed_out: u64,
    /// Retransmissions during the epoch.
    pub retries: u64,
    /// Packets abandoned (lost for good) during the epoch.
    pub abandoned: u64,
    /// Cycles from the epoch's transition until delivered throughput
    /// returned to within epsilon of steady state; `None` if it never did
    /// inside this epoch.
    pub reconverged_after: Option<u64>,
}

impl EpochStats {
    /// Cycles in the epoch.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Delivered packets per cycle over the epoch.
    pub fn delivered_rate(&self) -> f64 {
        let cycles = self.cycles();
        if cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / cycles as f64
        }
    }
}

/// Per-epoch churn statistics for one run, alongside the usual
/// [`crate::SimStats`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Pre-churn steady-state delivered throughput (packets/cycle), the
    /// reconvergence reference. Measured after warm-up and before the
    /// first transition (falling back to the whole run when a transition
    /// precedes the warm-up boundary).
    pub steady_rate: f64,
    /// One entry per epoch, in time order. The first entry is the
    /// pre-churn baseline (no transitions).
    pub epochs: Vec<EpochStats>,
}

impl ChurnReport {
    /// Epochs that start with at least one transition.
    pub fn transitions(&self) -> usize {
        self.epochs.iter().filter(|e| e.downs + e.ups > 0).count()
    }

    /// Total packets lost for good across all epochs.
    pub fn packets_lost(&self) -> u64 {
        self.epochs.iter().map(|e| e.abandoned).sum()
    }

    /// Transition epochs that reconverged, out of those that had room to.
    pub fn reconverged(&self) -> usize {
        self.epochs
            .iter()
            .filter(|e| e.downs + e.ups > 0 && e.reconverged_after.is_some())
            .count()
    }

    /// Mean time-to-reconverge (cycles) over reconverged transition
    /// epochs; `None` when none reconverged.
    pub fn mean_reconverge_cycles(&self) -> Option<f64> {
        let times: Vec<u64> = self
            .epochs
            .iter()
            .filter(|e| e.downs + e.ups > 0)
            .filter_map(|e| e.reconverged_after)
            .collect();
        if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<u64>() as f64 / times.len() as f64)
        }
    }

    /// Per-epoch counter sums, for conservation checks against the run
    /// totals: `(injected, delivered, abandoned)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.epochs.iter().fold((0, 0, 0), |(i, d, a), e| {
            (i + e.injected, d + e.delivered, a + e.abandoned)
        })
    }
}

/// Cumulative counter snapshot taken at an epoch boundary. Engine-internal:
/// exposed (hidden) so the event-driven engine in `ftclos-evsim` can build
/// byte-identical [`ChurnReport`]s from the same boundary bookkeeping.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochMark {
    pub cycle: u64,
    pub downs: u64,
    pub ups: u64,
    pub injected: u64,
    pub delivered: u64,
    pub timed_out: u64,
    pub retries: u64,
    pub abandoned: u64,
}

/// Assemble the [`ChurnReport`] from boundary snapshots and the per-cycle
/// delivery series. `marks[0]` must be the run-start snapshot at cycle 0;
/// `final_mark` the post-run totals; `delivered_per_cycle[c]` the packets
/// delivered in cycle `c`; `warmup` the first measured cycle.
#[doc(hidden)]
pub fn build_report(
    cfg: &ChurnConfig,
    marks: &[EpochMark],
    final_mark: EpochMark,
    delivered_per_cycle: &[u32],
    warmup: u64,
) -> ChurnReport {
    let window = cfg.recovery_window.max(1) as usize;
    let mean_over = |start: usize, end: usize| -> f64 {
        if end <= start || end > delivered_per_cycle.len() {
            return 0.0;
        }
        let sum: u64 = delivered_per_cycle[start..end]
            .iter()
            .map(|&d| d as u64)
            .sum();
        sum as f64 / (end - start) as f64
    };

    // Steady state: delivered rate between warm-up and the first
    // transition; whole-run mean when churn starts before the warm-up ends.
    let first_transition = marks
        .iter()
        .find(|m| m.downs + m.ups > 0)
        .map(|m| m.cycle as usize)
        .unwrap_or(delivered_per_cycle.len());
    let steady_rate = if first_transition > warmup as usize {
        mean_over(warmup as usize, first_transition)
    } else {
        mean_over(0, delivered_per_cycle.len())
    };

    let threshold = (1.0 - cfg.epsilon) * steady_rate;
    let mut epochs = Vec::with_capacity(marks.len());
    for (i, mark) in marks.iter().enumerate() {
        let next = marks.get(i + 1).copied().unwrap_or(final_mark);
        let (start, end) = (mark.cycle as usize, next.cycle as usize);
        // First offset d where the window starting at start + d delivers at
        // least (1 - epsilon) * steady, window fully inside the epoch.
        let mut reconverged_after = None;
        if steady_rate > 0.0 {
            let mut d = 0usize;
            while start + d + window <= end.min(delivered_per_cycle.len()) {
                if mean_over(start + d, start + d + window) >= threshold {
                    reconverged_after = Some(d as u64);
                    break;
                }
                d += 1;
            }
        }
        epochs.push(EpochStats {
            start: mark.cycle,
            end: next.cycle,
            downs: mark.downs,
            ups: mark.ups,
            injected: next.injected - mark.injected,
            delivered: next.delivered - mark.delivered,
            timed_out: next.timed_out - mark.timed_out,
            retries: next.retries - mark.retries,
            abandoned: next.abandoned - mark.abandoned,
            reconverged_after,
        });
    }
    ChurnReport {
        steady_rate,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(cycle: u64, downs: u64, ups: u64, delivered: u64) -> EpochMark {
        EpochMark {
            cycle,
            downs,
            ups,
            injected: delivered,
            delivered,
            ..EpochMark::default()
        }
    }

    #[test]
    fn report_slices_epochs_and_measures_recovery() {
        // 2 packets/cycle steady; an outage at cycle 100 drops delivery to
        // zero for 50 cycles, then it recovers.
        let mut per_cycle = vec![2u32; 300];
        for d in per_cycle.iter_mut().take(150).skip(100) {
            *d = 0;
        }
        let cfg = ChurnConfig {
            mode: ReplanMode::PerCycle,
            epsilon: 0.1,
            recovery_window: 20,
        };
        let marks = vec![mark(0, 0, 0, 0), mark(100, 2, 0, 200)];
        let final_mark = mark(300, 0, 0, 500);
        let report = build_report(&cfg, &marks, final_mark, &per_cycle, 10);
        assert!((report.steady_rate - 2.0).abs() < 1e-9);
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[0].cycles(), 100);
        assert_eq!(report.epochs[1].delivered, 300);
        // Delivery restarts at cycle 150; the window starting at offset 48
        // holds 2 dead + 18 full cycles = 1.8/cycle, exactly the 10%
        // tolerance, so reconvergence is declared there.
        assert_eq!(report.epochs[1].reconverged_after, Some(48));
        assert_eq!(report.transitions(), 1);
        assert_eq!(report.reconverged(), 1);
        assert_eq!(report.mean_reconverge_cycles(), Some(48.0));
        let (inj, del, ab) = report.totals();
        assert_eq!(inj, 500);
        assert_eq!(del, 500);
        assert_eq!(ab, 0);
    }

    #[test]
    fn unrecovered_epoch_reports_none() {
        let mut per_cycle = vec![2u32; 200];
        for d in per_cycle.iter_mut().skip(100) {
            *d = 0; // never recovers
        }
        let cfg = ChurnConfig {
            recovery_window: 20,
            ..ChurnConfig::default()
        };
        let marks = vec![mark(0, 0, 0, 0), mark(100, 1, 0, 200)];
        let report = build_report(&cfg, &marks, mark(200, 0, 0, 200), &per_cycle, 10);
        assert_eq!(report.epochs[1].reconverged_after, None);
        assert_eq!(report.reconverged(), 0);
        assert_eq!(report.mean_reconverge_cycles(), None);
    }

    #[test]
    fn replan_mode_hysteresis_constants() {
        assert_eq!(ReplanMode::Pinned.hysteresis_k(), None);
        assert_eq!(ReplanMode::PerCycle.hysteresis_k(), Some(0));
        assert_eq!(ReplanMode::Hysteresis { k: 40 }.hysteresis_k(), Some(40));
    }
}
