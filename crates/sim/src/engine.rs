//! The synchronous cycle engine.

use crate::churn::{build_report, ChurnConfig, ChurnReport, EpochMark};
use crate::config::{Arbiter, SimConfig};
use crate::error::SimError;
use crate::fault::{ChurnSchedule, FaultSchedule};
use crate::policy::Policy;
use crate::state::{stall_report, Packet, PagedVec, SimArena};
use crate::stats::{ChannelBusy, SimStats};
use crate::workload::Workload;
use ftclos_obs::{Noop, Recorder};
use ftclos_routing::LinkAdmission;
use ftclos_topo::{ChannelId, NodeId, Topology, Transition};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Cumulative simulator totals already flushed to a [`Recorder`]: each
/// flush pushes only the delta, so recorder counters stay equal to the
/// engine's monotonic stats at every epoch boundary.
#[derive(Clone, Copy, Debug, Default)]
struct FlushedTotals {
    injected: u64,
    delivered: u64,
    timed_out: u64,
    retries: u64,
    abandoned: u64,
    refusals: u64,
}

impl FlushedTotals {
    fn flush<R: Recorder>(&mut self, rec: &R, stats: &SimStats) -> Result<(), SimError> {
        let delta = |name: &'static str, total: u64, seen: u64| {
            total.checked_sub(seen).ok_or_else(|| {
                SimError::invariant(format!("recorder counter {name} moved backwards"))
            })
        };
        rec.add(
            "sim.injected",
            delta("sim.injected", stats.injected_total, self.injected)?,
        );
        rec.add(
            "sim.delivered",
            delta("sim.delivered", stats.delivered_total, self.delivered)?,
        );
        rec.add(
            "sim.timed_out",
            delta("sim.timed_out", stats.timed_out_total, self.timed_out)?,
        );
        rec.add(
            "sim.retries",
            delta("sim.retries", stats.retries_total, self.retries)?,
        );
        rec.add(
            "sim.abandoned",
            delta("sim.abandoned", stats.abandoned_total, self.abandoned)?,
        );
        rec.add(
            "sim.refusals",
            delta("sim.refusals", stats.injection_refusals, self.refusals)?,
        );
        rec.gauge("sim.in_flight", in_flight(stats)?);
        self.injected = stats.injected_total;
        self.delivered = stats.delivered_total;
        self.timed_out = stats.timed_out_total;
        self.retries = stats.retries_total;
        self.abandoned = stats.abandoned_total;
        self.refusals = stats.injection_refusals;
        Ok(())
    }
}

/// Packets currently inside the network: injected minus delivered minus
/// abandoned, with the subtraction checked so a broken counter surfaces as
/// a typed [`SimError::Invariant`] rather than a debug-mode underflow panic.
fn in_flight(stats: &SimStats) -> Result<u64, SimError> {
    stats
        .injected_total
        .checked_sub(stats.delivered_total)
        .and_then(|left| left.checked_sub(stats.abandoned_total))
        .ok_or_else(|| {
            SimError::invariant("delivered + abandoned exceed injected (counter underflow)")
        })
}

/// Cycle-level simulator over a [`Topology`] with a path [`Policy`].
pub struct Simulator<'a> {
    topo: &'a Topology,
    cfg: SimConfig,
    policy: Policy,
    arena: SimArena,
}

impl<'a> Simulator<'a> {
    /// Create a simulator. The policy must cover every pair the workload
    /// can generate (unrouteable injections are counted as refusals).
    pub fn new(topo: &'a Topology, cfg: SimConfig, policy: Policy) -> Self {
        Self::with_arena(topo, cfg, policy, SimArena::new())
    }

    /// Create a simulator reusing a [`SimArena`] from a previous run —
    /// repeated runs through one arena recycle state pages instead of
    /// reallocating them. Semantically identical to [`Simulator::new`].
    pub fn with_arena(topo: &'a Topology, cfg: SimConfig, policy: Policy, arena: SimArena) -> Self {
        Self {
            topo,
            cfg,
            policy,
            arena,
        }
    }

    /// Recover the arena (and its recycled pages) for the next simulator.
    pub fn into_arena(self) -> SimArena {
        self.arena
    }

    /// Run one simulation and return its statistics. `seed` drives
    /// injection coin flips and random path spreading; equal seeds give
    /// identical runs.
    ///
    /// # Panics
    /// On an invalid configuration or a broken engine invariant — use
    /// [`Simulator::try_run`] for the structured-error form.
    pub fn run(&mut self, workload: &Workload, seed: u64) -> SimStats {
        match self.try_run(workload, seed) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Simulator::run`]: configuration problems and engine
    /// invariant violations come back as [`SimError`] instead of panics.
    ///
    /// # Errors
    /// [`SimError::Config`] for an invalid [`SimConfig`];
    /// [`SimError::Invariant`] if the engine catches itself in an
    /// inconsistent state.
    pub fn try_run(&mut self, workload: &Workload, seed: u64) -> Result<SimStats, SimError> {
        self.try_run_with_faults(workload, seed, &FaultSchedule::new())
    }

    /// [`Simulator::try_run`] with instrumentation: the run records under
    /// span `sim.run`, with cumulative counters (`sim.injected`,
    /// `sim.delivered`, `sim.timed_out`, `sim.retries`, `sim.abandoned`,
    /// `sim.refusals`, `sim.cycles`), the `sim.in_flight` gauge, and one
    /// recorder epoch per liveness-transition cycle plus a final `end`
    /// epoch — so per-epoch packet conservation is auditable from the
    /// trace alone. With [`Noop`] this is exactly `try_run`.
    ///
    /// # Errors
    /// As for [`Simulator::try_run`].
    pub fn try_run_recorded<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        rec: &R,
    ) -> Result<SimStats, SimError> {
        self.run_loop(workload, seed, &FaultSchedule::new(), None, rec)
            .map(|(stats, _)| stats)
    }

    /// [`Simulator::try_run_with_faults`] with instrumentation (see
    /// [`Simulator::try_run_recorded`] for what is recorded).
    ///
    /// # Errors
    /// As for [`Simulator::try_run`].
    pub fn try_run_with_faults_recorded<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        faults: &FaultSchedule,
        rec: &R,
    ) -> Result<SimStats, SimError> {
        self.run_loop(workload, seed, faults, None, rec)
            .map(|(stats, _)| stats)
    }

    /// Run with mid-simulation channel transitions: each event of `faults`
    /// marks its channel dead — or alive again — at the start of its cycle.
    /// Dead channels grant no packets; stalled traffic is dropped/retried
    /// per the TTL and retry knobs of the configuration. Revived channels
    /// grant again from their cycle on.
    ///
    /// # Errors
    /// As for [`Simulator::try_run`].
    pub fn try_run_with_faults(
        &mut self,
        workload: &Workload,
        seed: u64,
        faults: &FaultSchedule,
    ) -> Result<SimStats, SimError> {
        self.run_loop(workload, seed, faults, None, &Noop)
            .map(|(stats, _)| stats)
    }

    /// Run under churn with per-epoch instrumentation: applies the
    /// schedule's transitions like [`Simulator::try_run_with_faults`],
    /// drives the path policy's live mask per `churn.mode` (pinned /
    /// per-cycle / hysteresis re-planning), and slices the run into epochs
    /// at every transition cycle. Returns the usual statistics plus the
    /// [`ChurnReport`] with per-epoch counters and time-to-reconverge.
    ///
    /// # Errors
    /// As for [`Simulator::try_run`].
    pub fn try_run_churn(
        &mut self,
        workload: &Workload,
        seed: u64,
        schedule: &ChurnSchedule,
        churn: &ChurnConfig,
    ) -> Result<(SimStats, ChurnReport), SimError> {
        self.run_loop(workload, seed, schedule, Some(churn), &Noop)
            .map(|(stats, report)| (stats, report.unwrap_or_default()))
    }

    /// [`Simulator::try_run_churn`] with instrumentation (see
    /// [`Simulator::try_run_recorded`]; additionally counts hysteresis
    /// re-planning events under `sim.churn_replans`).
    ///
    /// # Errors
    /// As for [`Simulator::try_run`].
    pub fn try_run_churn_recorded<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        schedule: &ChurnSchedule,
        churn: &ChurnConfig,
        rec: &R,
    ) -> Result<(SimStats, ChurnReport), SimError> {
        self.run_loop(workload, seed, schedule, Some(churn), rec)
            .map(|(stats, report)| (stats, report.unwrap_or_default()))
    }

    fn run_loop<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        faults: &ChurnSchedule,
        churn: Option<&ChurnConfig>,
        rec: &R,
    ) -> Result<(SimStats, Option<ChurnReport>), SimError> {
        // Detach the arena so the loop can borrow its arrays disjointly
        // while the policy (also behind `self`) is borrowed mutably.
        let mut arena = std::mem::take(&mut self.arena);
        let result = self.run_loop_inner(workload, seed, faults, churn, rec, &mut arena);
        self.arena = arena;
        result
    }

    fn run_loop_inner<R: Recorder>(
        &mut self,
        workload: &Workload,
        seed: u64,
        faults: &ChurnSchedule,
        churn: Option<&ChurnConfig>,
        rec: &R,
        arena: &mut SimArena,
    ) -> Result<(SimStats, Option<ChurnReport>), SimError> {
        self.cfg.validate()?;
        let _span = rec.span("sim.run");
        // Counter values already pushed to the recorder (counters are
        // monotonic; each flush adds only the delta since the last one).
        let mut flushed = FlushedTotals::default();
        // A fresh run starts unmasked; churn modes rebuild the mask below.
        self.policy.set_live_mask(None);
        // Churn instrumentation (None outside churn runs, no overhead).
        let mut admission: Option<LinkAdmission> = churn
            .and_then(|c| c.mode.hysteresis_k())
            .map(|k| LinkAdmission::new(self.topo.num_channels(), k));
        let mut epoch_marks: Vec<EpochMark> = Vec::new();
        let mut delivered_per_cycle: Vec<u32> = Vec::new();
        let mut delivered_seen = 0u64;
        if churn.is_some() {
            epoch_marks.push(EpochMark::default()); // run-start baseline
        }
        let fault_events = faults.sorted_events();
        let mut next_fault = 0usize;
        let ttl = self.cfg.ttl_cycles;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let num_channels = self.topo.num_channels();
        let leaves: Vec<NodeId> = self.topo.leaves().collect();
        // All per-channel state (queues, arbiter pointers, wire deadlines,
        // liveness) lives in the paged arena: allocated on first touch,
        // recycled across runs, identical in content to the historical
        // dense arrays because every default is synthesized arithmetically.
        arena.prepare(num_channels, leaves.len());
        // Leaf node id -> dense leaf slot (leaves are the first node ids in
        // all our builders, but don't rely on it).
        let mut leaf_slot = vec![usize::MAX; self.topo.num_nodes()];
        for (slot, &l) in leaves.iter().enumerate() {
            leaf_slot[l.index()] = slot;
        }
        let flits = self.cfg.packet_flits.max(1);
        let mut source_injected = vec![false; leaves.len()];
        let mut window_latencies: Vec<u64> = Vec::new();
        let switch_nodes: Vec<NodeId> = self
            .topo
            .node_ids()
            .filter(|&id| self.topo.kind(id).is_switch())
            .collect();

        let mut stats = SimStats {
            window_cycles: self.cfg.measure_cycles,
            offered_rate: workload.rate(),
            channel_busy: ChannelBusy::zeros(num_channels),
            ..SimStats::default()
        };
        let warmup = self.cfg.warmup_cycles;
        let total = self.cfg.total_cycles();

        // Stall watchdog: `moves` counts successful channel grants; the
        // signature below changes whenever anything is delivered, dropped,
        // retried, or moved. If it freezes for `stall_watchdog` consecutive
        // cycles while packets are in flight, the network is wedged.
        let watchdog = self.cfg.stall_watchdog;
        let mut moves = 0u64;
        let mut frozen_cycles = 0u64;
        let mut last_signature = (u64::MAX, 0u64, 0u64, 0u64);

        let mut now = 0u64;
        loop {
            if now >= total {
                // Drain: run movement-only until the network empties.
                let inflight = in_flight(&stats)?;
                if !self.cfg.drain || inflight == 0 {
                    break;
                }
                if now >= total + SimConfig::DRAIN_CAP {
                    // An armed watchdog that was mid-freeze when the drain
                    // cap hit means nothing was moving: that is a stall,
                    // not a normal cap exit — report it as one instead of
                    // silently truncating the drain.
                    if watchdog > 0 && frozen_cycles > 0 {
                        return Err(SimError::Stalled(stall_report(
                            now,
                            inflight,
                            &arena.queues,
                            &arena.inject,
                        )));
                    }
                    break;
                }
            }
            let in_window = now >= warmup && now < total;
            let injecting = now < total;
            // --- Liveness events: scheduled transitions apply at cycle
            // start (events are ordered Down-before-Up per channel, so a
            // same-cycle flap nets to alive) ---
            let mut downs_now = 0u64;
            let mut ups_now = 0u64;
            while next_fault < fault_events.len() && fault_events[next_fault].cycle <= now {
                let e = fault_events[next_fault];
                if e.channel.index() < num_channels {
                    *arena.dead.get_mut(e.channel.index()) = e.transition == Transition::Down;
                    match e.transition {
                        Transition::Down => downs_now += 1,
                        Transition::Up => ups_now += 1,
                    }
                    if let Some(adm) = admission.as_mut() {
                        adm.observe(now, e.channel, e.transition);
                    }
                }
                next_fault += 1;
            }
            if churn.is_some() && downs_now + ups_now > 0 {
                let mark = EpochMark {
                    cycle: now,
                    downs: downs_now,
                    ups: ups_now,
                    injected: stats.injected_total,
                    delivered: stats.delivered_total,
                    timed_out: stats.timed_out_total,
                    retries: stats.retries_total,
                    abandoned: stats.abandoned_total,
                };
                match epoch_marks.last_mut() {
                    // Transitions at cycle 0 fold into the baseline mark.
                    Some(last) if last.cycle == now => {
                        last.downs += downs_now;
                        last.ups += ups_now;
                    }
                    _ => epoch_marks.push(mark),
                }
            }
            if downs_now + ups_now > 0 && rec.is_enabled() {
                // A liveness transition closes a recorder epoch: cumulative
                // counters and the in-flight gauge at this boundary make
                // per-epoch packet conservation auditable from the trace.
                flushed.flush(rec, &stats)?;
                rec.mark_epoch(&format!("cycle={now}"));
            }
            // Re-planning: promote stabilized links, refresh the pick mask.
            if let Some(adm) = admission.as_mut() {
                if adm.tick(now) {
                    self.policy.set_live_mask(Some(adm.mask()));
                    rec.add("sim.churn_replans", 1);
                }
            }
            // --- Timeout sweep: expire packets past their deadline.
            // Touched pages only, channel queues ascending then injection
            // slots ascending — untouched queues are empty, so this is the
            // historical full chained scan with the no-ops removed. ---
            if ttl > 0 {
                let mut expired: Vec<Packet> = Vec::new();
                let mut sweep = |q: &mut VecDeque<Packet>| -> Result<(), SimError> {
                    let mut i = 0;
                    while i < q.len() {
                        if now >= q[i].deadline {
                            let Some(p) = q.remove(i) else {
                                return Err(SimError::invariant(
                                    "expired packet index out of range",
                                ));
                            };
                            expired.push(p);
                        } else {
                            i += 1;
                        }
                    }
                    Ok(())
                };
                arena.queues.try_for_each_touched_mut(|_, q| sweep(q))?;
                arena.inject.try_for_each_touched_mut(|_, q| sweep(q))?;
                for p in expired {
                    stats.timed_out_total += 1;
                    let can_retry = self.cfg.retry && p.retries < self.cfg.retry_limit;
                    if !can_retry {
                        stats.abandoned_total += 1;
                        continue;
                    }
                    // Retransmit from the source with a *fresh* path pick:
                    // spreading policies get a new chance to dodge dead
                    // hardware. Latency keeps the original injection time.
                    let queue_probe = |c: ChannelId| arena.queues.get(c.index()).len();
                    match self.policy.pick(p.src, p.dst, queue_probe, &mut rng) {
                        Some(path) if !path.is_empty() => {
                            stats.retries_total += 1;
                            let slot = leaf_slot
                                .get(p.src as usize)
                                .copied()
                                .filter(|&s| s != usize::MAX)
                                .ok_or_else(|| {
                                    SimError::invariant(format!(
                                        "retransmission source {} is not a leaf",
                                        p.src
                                    ))
                                })?;
                            arena.inject.get_mut(slot).push_back(Packet {
                                src: p.src,
                                dst: p.dst,
                                path,
                                hop: 0,
                                inject_cycle: p.inject_cycle,
                                ready_at: now,
                                deadline: now + ttl,
                                retries: p.retries + 1,
                            });
                        }
                        _ => {
                            stats.abandoned_total += 1;
                        }
                    }
                }
            }
            // --- Injection phase ---
            for (slot, &leaf) in leaves.iter().enumerate() {
                if !injecting {
                    break;
                }
                if !rng.gen_bool(workload.rate().clamp(0.0, 1.0)) {
                    continue;
                }
                let src = leaf.0;
                let Some(dst) = workload.destination(src, |n| rng.gen_range(0..n)) else {
                    continue;
                };
                if self.cfg.bounded_injection
                    && arena.inject.get(slot).len() >= self.cfg.queue_capacity
                {
                    stats.injection_refusals += 1;
                    continue;
                }
                let queue_probe = |c: ChannelId| arena.queues.get(c.index()).len();
                let Some(path) = self.policy.pick(src, dst, queue_probe, &mut rng) else {
                    stats.injection_refusals += 1;
                    continue;
                };
                source_injected[slot] = true;
                stats.injected_total += 1;
                if in_window {
                    stats.injected_in_window += 1;
                }
                if path.is_empty() {
                    // Self traffic: delivered instantly.
                    stats.delivered_total += 1;
                    if in_window {
                        stats.delivered_in_window += 1;
                    }
                    continue;
                }
                arena.inject.get_mut(slot).push_back(Packet {
                    src,
                    dst,
                    path,
                    hop: 0,
                    inject_cycle: now,
                    ready_at: now,
                    deadline: if ttl > 0 { now + ttl } else { u64::MAX },
                    retries: 0,
                });
            }

            // --- Movement phase: one grant per output channel per cycle ---
            // Injection links (leaf -> switch): a leaf drives a single
            // uplink, no arbitration needed under either discipline.
            for (slot, &leaf) in leaves.iter().enumerate() {
                let Some(&up) = self.topo.out_channels(leaf).first() else {
                    continue;
                };
                let o = up.index();
                if *arena.busy_until.get(o) > now
                    || *arena.dead.get(o)
                    || arena.queues.get(o).len() >= self.cfg.queue_capacity
                {
                    continue;
                }
                // Probe read-only first: popping goes through the touching
                // accessor only when the queue is provably non-empty.
                let eligible = matches!(
                    arena.inject.get(slot).front(),
                    Some(p) if p.ready_at <= now && p.path.get(p.hop) == Some(&up)
                );
                if eligible {
                    let Some(p) = arena.inject.get_mut(slot).pop_front() else {
                        return Err(SimError::invariant(
                            "eligible injection-queue head disappeared",
                        ));
                    };
                    self.advance(
                        p,
                        o,
                        now,
                        flits,
                        in_window,
                        &mut arena.queues,
                        &mut arena.busy_until,
                        &mut stats,
                        &mut window_latencies,
                        &mut moves,
                    )?;
                }
            }
            // Switch outputs.
            match self.cfg.arbiter {
                Arbiter::HolFifo => {
                    for o in 0..num_channels {
                        if *arena.busy_until.get(o) > now || *arena.dead.get(o) {
                            continue; // wire occupied, or killed by a fault
                        }
                        let ch = self.topo.channel(ChannelId(o as u32));
                        if self.topo.kind(ch.src).is_leaf() {
                            continue; // injection links handled above
                        }
                        let to_leaf = self.topo.kind(ch.dst).is_leaf();
                        if !to_leaf && arena.queues.get(o).len() >= self.cfg.queue_capacity {
                            continue; // no downstream credit
                        }
                        // Round-robin over the switch's input-queue *heads*.
                        let inputs = self.topo.in_channels(ch.src);
                        let n_in = inputs.len();
                        let start = *arena.rr.get(o) as usize % n_in.max(1);
                        for k in 0..n_in {
                            let idx = (start + k) % n_in;
                            let qi = inputs[idx].index();
                            let head_ok = matches!(
                                arena.queues.get(qi).front(),
                                Some(p) if p.ready_at <= now
                                    && p.path.get(p.hop) == Some(&ChannelId(o as u32))
                            );
                            if head_ok {
                                let Some(p) = arena.queues.get_mut(qi).pop_front() else {
                                    return Err(SimError::invariant(
                                        "eligible input-queue head disappeared",
                                    ));
                                };
                                *arena.rr.get_mut(o) = (idx as u32 + 1) % n_in as u32;
                                self.advance(
                                    p,
                                    o,
                                    now,
                                    flits,
                                    in_window,
                                    &mut arena.queues,
                                    &mut arena.busy_until,
                                    &mut stats,
                                    &mut window_latencies,
                                    &mut moves,
                                )?;
                                break;
                            }
                        }
                    }
                }
                Arbiter::Voq { iterations } => {
                    for &sw in &switch_nodes {
                        self.islip_switch(
                            sw,
                            iterations.max(1),
                            now,
                            flits,
                            in_window,
                            &mut arena.queues,
                            &mut arena.busy_until,
                            &arena.dead,
                            &mut arena.rr,
                            &mut arena.accept_ptr,
                            &mut stats,
                            &mut window_latencies,
                            &mut moves,
                        )?;
                    }
                }
            }
            if churn.is_some() {
                delivered_per_cycle.push((stats.delivered_total - delivered_seen) as u32);
                delivered_seen = stats.delivered_total;
            }
            if watchdog > 0 {
                let inflight = in_flight(&stats)?;
                let signature = (
                    moves,
                    stats.delivered_total,
                    stats.abandoned_total,
                    stats.retries_total,
                );
                if inflight > 0 && signature == last_signature {
                    frozen_cycles += 1;
                    if frozen_cycles >= watchdog {
                        return Err(SimError::Stalled(stall_report(
                            now,
                            inflight,
                            &arena.queues,
                            &arena.inject,
                        )));
                    }
                } else {
                    frozen_cycles = 0;
                    last_signature = signature;
                }
            }
            now += 1;
        }
        stats.leftover_packets = in_flight(&stats)?;
        stats.active_sources = source_injected.iter().filter(|&&b| b).count();
        rec.add("sim.cycles", now);
        if rec.is_enabled() {
            flushed.flush(rec, &stats)?;
            rec.mark_epoch("end");
        }
        window_latencies.sort_unstable();
        self.finish_stats(&mut stats, &window_latencies);
        let report = churn.map(|c| {
            let final_mark = EpochMark {
                cycle: now,
                downs: 0,
                ups: 0,
                injected: stats.injected_total,
                delivered: stats.delivered_total,
                timed_out: stats.timed_out_total,
                retries: stats.retries_total,
                abandoned: stats.abandoned_total,
            };
            build_report(c, &epoch_marks, final_mark, &delivered_per_cycle, warmup)
        });
        Ok((stats, report))
    }

    /// Fill in percentile fields from sorted window latencies.
    fn finish_stats(&self, stats: &mut SimStats, sorted: &[u64]) {
        let pct = |q: f64| -> u64 {
            if sorted.is_empty() {
                0
            } else {
                let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
                sorted[idx]
            }
        };
        stats.latency_p50 = pct(0.50);
        stats.latency_p95 = pct(0.95);
        stats.latency_p99 = pct(0.99);
    }

    /// Move one granted packet across output channel `o`.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        mut p: Packet,
        o: usize,
        now: u64,
        flits: u64,
        in_window: bool,
        queues: &mut PagedVec<VecDeque<Packet>>,
        busy_until: &mut PagedVec<u64>,
        stats: &mut SimStats,
        window_latencies: &mut Vec<u64>,
        moves: &mut u64,
    ) -> Result<(), SimError> {
        let ch = self.topo.channel(ChannelId(o as u32));
        let to_leaf = self.topo.kind(ch.dst).is_leaf();
        *moves += 1;
        p.hop += 1;
        // The wire serializes `flits` flits; the packet cannot be forwarded
        // again (cut-through is not modeled) until the tail flit arrives.
        p.ready_at = now + flits;
        *busy_until.get_mut(o) = now + flits;
        if in_window {
            stats.channel_busy.add(o, flits);
        }
        if to_leaf {
            if ch.dst.0 != p.dst {
                return Err(SimError::invariant(format!(
                    "packet for leaf {} exited the fabric at leaf {}",
                    p.dst, ch.dst.0
                )));
            }
            if p.hop != p.path.len() {
                return Err(SimError::invariant(format!(
                    "packet reached its destination after hop {} of a {}-hop path",
                    p.hop,
                    p.path.len()
                )));
            }
            stats.delivered_total += 1;
            if in_window {
                stats.delivered_in_window += 1;
                let lat = now - p.inject_cycle + flits;
                stats.latency_sum += lat;
                stats.latency_max = stats.latency_max.max(lat);
                window_latencies.push(lat);
            }
        } else {
            queues.get_mut(o).push_back(p);
        }
        Ok(())
    }

    /// One cycle of iSLIP request-grant-accept matching on switch `sw`,
    /// followed by the matched packet moves.
    ///
    /// Virtual output queues are realized over the shared per-input buffer:
    /// the packet an input offers toward output `o` is the *first* buffered
    /// packet whose next hop is `o` (FIFO per virtual queue), so a blocked
    /// head never stalls traffic for other outputs.
    #[allow(clippy::too_many_arguments)]
    fn islip_switch(
        &self,
        sw: NodeId,
        iterations: u8,
        now: u64,
        flits: u64,
        in_window: bool,
        queues: &mut PagedVec<VecDeque<Packet>>,
        busy_until: &mut PagedVec<u64>,
        dead: &PagedVec<bool>,
        grant_ptr: &mut PagedVec<u32>,
        accept_ptr: &mut PagedVec<u32>,
        stats: &mut SimStats,
        window_latencies: &mut Vec<u64>,
        moves: &mut u64,
    ) -> Result<(), SimError> {
        let inputs = self.topo.in_channels(sw);
        let outputs = self.topo.out_channels(sw);
        if inputs.is_empty() || outputs.is_empty() {
            return Ok(());
        }
        // Output-channel index -> local output slot.
        let out_slot = |c: ChannelId| outputs.iter().position(|&o| o == c);

        // Per input: the buffer position of the first eligible packet per
        // local output (the VOQ heads).
        let mut voq_head: Vec<Vec<Option<usize>>> = Vec::with_capacity(inputs.len());
        for &qi in inputs {
            let mut heads = vec![None; outputs.len()];
            for (pos, p) in queues.get(qi.index()).iter().enumerate() {
                let Some(&next_hop) = p.path.get(p.hop) else {
                    continue; // defensive: delivered packets never queue
                };
                if p.ready_at > now {
                    continue;
                }
                if let Some(oj) = out_slot(next_hop) {
                    if heads[oj].is_none() {
                        heads[oj] = Some(pos);
                    }
                }
            }
            voq_head.push(heads);
        }
        // Output availability (wire free + downstream credit).
        let out_ok: Vec<bool> = outputs
            .iter()
            .map(|&o| {
                if *busy_until.get(o.index()) > now || *dead.get(o.index()) {
                    return false;
                }
                let ch = self.topo.channel(o);
                self.topo.kind(ch.dst).is_leaf()
                    || queues.get(o.index()).len() < self.cfg.queue_capacity
            })
            .collect();

        let mut in_matched = vec![false; inputs.len()];
        let mut out_matched = vec![false; outputs.len()];
        let mut matches: Vec<(usize, usize)> = Vec::new();
        for iter in 0..iterations {
            // Grant: each free output offers to one requesting input,
            // scanning from its grant pointer.
            let mut grants: Vec<Vec<usize>> = vec![Vec::new(); inputs.len()];
            let mut any_grant = false;
            for (oj, &o) in outputs.iter().enumerate() {
                if out_matched[oj] || !out_ok[oj] {
                    continue;
                }
                let start = *grant_ptr.get(o.index()) as usize % inputs.len();
                for k in 0..inputs.len() {
                    let ii = (start + k) % inputs.len();
                    if !in_matched[ii] && voq_head[ii][oj].is_some() {
                        grants[ii].push(oj);
                        any_grant = true;
                        break;
                    }
                }
            }
            if !any_grant {
                break;
            }
            // Accept: each input picks one granted output, scanning from
            // its accept pointer; pointers advance only on first-iteration
            // accepts (standard iSLIP desynchronization rule).
            for (ii, granted) in grants.iter().enumerate() {
                if granted.is_empty() || in_matched[ii] {
                    continue;
                }
                let qi = inputs[ii];
                let start = *accept_ptr.get(qi.index()) as usize % outputs.len();
                let Some(&oj) = granted
                    .iter()
                    .min_by_key(|&&oj| (oj + outputs.len() - start) % outputs.len())
                else {
                    return Err(SimError::invariant("grant list emptied during accept"));
                };
                in_matched[ii] = true;
                out_matched[oj] = true;
                matches.push((ii, oj));
                if iter == 0 {
                    *grant_ptr.get_mut(outputs[oj].index()) = ((ii + 1) % inputs.len()) as u32;
                    *accept_ptr.get_mut(qi.index()) = ((oj + 1) % outputs.len()) as u32;
                }
            }
        }
        // Move matched packets.
        for (ii, oj) in matches {
            let Some(pos) = voq_head[ii][oj] else {
                return Err(SimError::invariant(
                    "iSLIP matched an input with no eligible VOQ head",
                ));
            };
            let Some(p) = queues.get_mut(inputs[ii].index()).remove(pos) else {
                return Err(SimError::invariant("iSLIP VOQ head position out of range"));
            };
            self.advance(
                p,
                outputs[oj].index(),
                now,
                flits,
                in_window,
                queues,
                busy_until,
                stats,
                window_latencies,
                moves,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_routing::{DModK, ObliviousMultipath, SpreadPolicy, YuanDeterministic};
    use ftclos_topo::{crossbar, Ftree};
    use ftclos_traffic::{adversarial, patterns};

    fn cfg() -> SimConfig {
        SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn crossbar_delivers_line_rate_permutation() {
        let xb = crossbar(8).unwrap();
        // Route over the crossbar: 2-hop paths via the switch.
        struct XbRouter<'a>(&'a ftclos_topo::Crossbar);
        impl ftclos_routing::SinglePathRouter for XbRouter<'_> {
            fn ports(&self) -> u32 {
                self.0.ports() as u32
            }
            fn route(&self, pair: ftclos_traffic::SdPair) -> ftclos_routing::Path {
                if pair.src == pair.dst {
                    return ftclos_routing::Path::empty();
                }
                ftclos_routing::Path::new(vec![
                    self.0.up_channel(pair.src as usize),
                    self.0.down_channel(pair.dst as usize),
                ])
            }
            fn name(&self) -> &'static str {
                "crossbar"
            }
        }
        let policy = Policy::from_single_path(&XbRouter(&xb));
        let perm = patterns::shift(8, 3);
        let mut sim = Simulator::new(xb.topology(), cfg(), policy);
        let stats = sim.run(&Workload::permutation(&perm, 1.0), 1);
        assert!(
            stats.accepted_throughput() > 0.95,
            "crossbar throughput {}",
            stats.accepted_throughput()
        );
        assert_eq!(stats.injection_refusals, 0);
    }

    #[test]
    fn nonblocking_ftree_matches_crossbar() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let policy = Policy::from_single_path(&router);
        let perm = adversarial::rotate_switches(adversarial::FtreeShape { n: 2, m: 4, r: 5 });
        let mut sim = Simulator::new(ft.topology(), cfg(), policy);
        let stats = sim.run(&Workload::permutation(&perm, 1.0), 2);
        assert!(
            stats.accepted_throughput() > 0.95,
            "Theorem 3 fabric throughput {}",
            stats.accepted_throughput()
        );
    }

    #[test]
    fn blocked_routing_loses_throughput() {
        // d-mod-k with m < n^2 on a permutation engineered to collide.
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let policy = Policy::from_single_path(&router);
        // All leaves of each switch target the same residue class.
        let shape = adversarial::FtreeShape { n: 2, m: 2, r: 5 };
        let perm = adversarial::rotate_switches(shape);
        let mut sim = Simulator::new(ft.topology(), cfg(), policy);
        let stats = sim.run(&Workload::permutation(&perm, 1.0), 3);
        // rotate keeps local index, so (v,0) and (v,1) go to dsts with
        // different parity -> actually contention-free for d-mod-2. Use a
        // same-parity attack instead: shift by one switch AND swap local
        // index... simpler: uniform random traffic saturates below 1.
        let uni = Workload::uniform_random(10, 1.0);
        let stats_uni =
            Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&router)).run(&uni, 4);
        assert!(stats_uni.accepted_throughput() < 0.95);
        // The permutation case is a sanity run (no assertion on value).
        assert!(stats.delivered_total > 0);
    }

    #[test]
    fn latency_grows_with_load() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let lo = Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&router))
            .run(&Workload::permutation(&perm, 0.1), 5);
        let hi = Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&router))
            .run(&Workload::permutation(&perm, 0.9), 5);
        assert!(lo.mean_latency() >= 2.0, "at least hop count");
        assert!(hi.mean_latency() >= lo.mean_latency());
    }

    #[test]
    fn bounded_injection_refuses() {
        let ft = Ftree::new(2, 1, 5).unwrap(); // single top: heavy contention
        let router = DModK::new(&ft);
        let config = SimConfig {
            bounded_injection: true,
            queue_capacity: 2,
            warmup_cycles: 100,
            measure_cycles: 500,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(ft.topology(), config, Policy::from_single_path(&router));
        let stats = sim.run(&Workload::uniform_random(10, 1.0), 6);
        assert!(stats.injection_refusals > 0);
    }

    #[test]
    fn multipath_spreading_beats_single_path_on_adversarial_pattern() {
        // All four sources of switch 0 target destinations ≡ 0 (mod m):
        // d-mod-k funnels them onto one uplink (~0.25 throughput), while
        // oblivious spreading uses all four uplinks.
        let ft = Ftree::new(4, 4, 9).unwrap();
        let single = DModK::new(&ft);
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = ftclos_traffic::Permutation::from_pairs(
            36,
            (0..4).map(|k| ftclos_traffic::SdPair::new(k, (k + 1) * 4)),
        )
        .unwrap();
        let w = Workload::permutation(&perm, 1.0);
        let s1 = Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&single)).run(&w, 7);
        let s2 = Simulator::new(ft.topology(), cfg(), Policy::from_multipath(&mp, true)).run(&w, 7);
        assert!(
            s1.accepted_throughput() < 0.35,
            "d-mod-k should funnel: {}",
            s1.accepted_throughput()
        );
        assert!(
            s2.accepted_throughput() > s1.accepted_throughput() + 0.2,
            "multipath {} vs single {}",
            s2.accepted_throughput(),
            s1.accepted_throughput()
        );
    }

    #[test]
    fn multi_flit_packets_serialize() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let run = |flits: u64, rate: f64| {
            let config = SimConfig {
                packet_flits: flits,
                ..cfg()
            };
            Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
                .run(&Workload::permutation(&perm, rate), 21)
        };
        // At low load, latency grows by ~(flits-1) per hop.
        let lat1 = run(1, 0.05).mean_latency();
        let lat4 = run(4, 0.05).mean_latency();
        assert!(
            lat4 > lat1 * 2.5,
            "store-and-forward serialization: {lat1} vs {lat4}"
        );
        // At saturation, packet throughput is ~1/flits of the single-flit
        // case (the wire carries the same flit rate).
        let thr1 = run(1, 1.0).accepted_throughput();
        let thr4 = run(4, 1.0).accepted_throughput();
        assert!(
            (thr4 - thr1 / 4.0).abs() < 0.05,
            "packet throughput {thr4} vs expected {}",
            thr1 / 4.0
        );
    }

    #[test]
    fn hol_blocking_vs_islip_on_uniform_crossbar() {
        // The classic input-queued switch result: FIFO input queues cap
        // uniform-traffic throughput near 58.6% (HOL blocking); VOQs with
        // iSLIP restore ~100%. This validates the arbitration model.
        let xb = crossbar(16).unwrap();
        struct XbRouter<'a>(&'a ftclos_topo::Crossbar);
        impl ftclos_routing::SinglePathRouter for XbRouter<'_> {
            fn ports(&self) -> u32 {
                self.0.ports() as u32
            }
            fn route(&self, pair: ftclos_traffic::SdPair) -> ftclos_routing::Path {
                if pair.src == pair.dst {
                    return ftclos_routing::Path::empty();
                }
                ftclos_routing::Path::new(vec![
                    self.0.up_channel(pair.src as usize),
                    self.0.down_channel(pair.dst as usize),
                ])
            }
            fn name(&self) -> &'static str {
                "crossbar"
            }
        }
        let router = XbRouter(&xb);
        let uni = Workload::uniform_random(16, 1.0);
        let base = SimConfig {
            warmup_cycles: 500,
            measure_cycles: 3_000,
            queue_capacity: 64,
            ..SimConfig::default()
        };
        let run = |arbiter| {
            Simulator::new(
                xb.topology(),
                SimConfig { arbiter, ..base },
                Policy::from_single_path(&router),
            )
            .run(&uni, 31)
            .accepted_throughput()
        };
        let hol = run(crate::config::Arbiter::HolFifo);
        let islip1 = run(crate::config::Arbiter::Voq { iterations: 1 });
        let islip3 = run(crate::config::Arbiter::Voq { iterations: 3 });
        // HOL caps well below line rate regardless of buffering (the
        // classic unbounded-queue limit is 0.586; finite buffers with
        // injection backpressure land slightly above it).
        assert!(
            (0.5..0.78).contains(&hol),
            "HOL throughput {hol} should sit near the classic limit"
        );
        // Our VOQs share one per-input buffer, so iSLIP-1 approaches line
        // rate only as buffers deepen; 3 iterations get there already.
        assert!(
            islip1 > hol + 0.1,
            "iSLIP-1 {islip1} must clearly beat HOL {hol}"
        );
        assert!(islip3 > 0.93, "iSLIP-3 {islip3} should approach line rate");
    }

    #[test]
    fn islip_matches_hol_on_permutation_traffic() {
        // Permutation traffic has one flow per input, so there is no HOL
        // blocking to remove: both disciplines deliver line rate on the
        // nonblocking fabric.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 4);
        let w = Workload::permutation(&perm, 1.0);
        for arbiter in [
            crate::config::Arbiter::HolFifo,
            crate::config::Arbiter::Voq { iterations: 1 },
            crate::config::Arbiter::Voq { iterations: 3 },
        ] {
            let config = SimConfig { arbiter, ..cfg() };
            let stats = Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
                .run(&w, 33);
            assert!(
                stats.accepted_throughput() > 0.95,
                "{arbiter:?}: {}",
                stats.accepted_throughput()
            );
        }
    }

    #[test]
    fn islip_improves_dmodk_fat_tree_under_uniform_load() {
        // VOQs cannot make a blocking routing nonblocking, but they remove
        // the HOL component of the loss.
        let ft = Ftree::new(4, 4, 8).unwrap();
        let router = DModK::new(&ft);
        let uni = Workload::uniform_random(32, 1.0);
        let hol = Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&router))
            .run(&uni, 35)
            .accepted_throughput();
        let voq = Simulator::new(
            ft.topology(),
            SimConfig {
                arbiter: crate::config::Arbiter::Voq { iterations: 2 },
                ..cfg()
            },
            Policy::from_single_path(&router),
        )
        .run(&uni, 35)
        .accepted_throughput();
        assert!(voq > hol, "VOQ {voq} should beat HOL {hol}");
        assert!(
            voq < 0.98,
            "still not a crossbar: routing is the bottleneck"
        );
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let ft = Ftree::new(2, 2, 5).unwrap();
        let router = DModK::new(&ft);
        let config = cfg();
        let stats = Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
            .run(&Workload::uniform_random(10, 0.8), 22);
        assert!(stats.latency_p50 >= 2);
        assert!(stats.latency_p50 <= stats.latency_p95);
        assert!(stats.latency_p95 <= stats.latency_p99);
        assert!(stats.latency_p99 <= stats.latency_max);
    }

    #[test]
    fn drain_conserves_packets() {
        // With drain on, every injected packet is eventually delivered:
        // injected == delivered exactly, even under heavy contention.
        let ft = Ftree::new(2, 1, 5).unwrap();
        let router = DModK::new(&ft);
        let config = SimConfig {
            warmup_cycles: 100,
            measure_cycles: 400,
            drain: true,
            ..SimConfig::default()
        };
        let stats = Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
            .run(&Workload::uniform_random(10, 1.0), 44);
        assert_eq!(stats.leftover_packets, 0, "drain must empty the network");
        assert_eq!(stats.injected_total, stats.delivered_total);
        assert!(stats.injected_total > 0);
    }

    #[test]
    fn no_drain_reports_leftovers_consistently() {
        let ft = Ftree::new(2, 1, 5).unwrap();
        let router = DModK::new(&ft);
        let stats = Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&router))
            .run(&Workload::uniform_random(10, 1.0), 44);
        assert_eq!(
            stats.injected_total,
            stats.delivered_total + stats.leftover_packets,
            "conservation with in-flight remainder"
        );
        assert!(
            stats.leftover_packets > 0,
            "congested run leaves packets queued"
        );
    }

    #[test]
    fn same_seed_same_stats() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let w = Workload::permutation(&perm, 0.5);
        let a = Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&router)).run(&w, 11);
        let b = Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&router)).run(&w, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn try_run_rejects_invalid_config() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let bad = SimConfig {
            queue_capacity: 0,
            ..SimConfig::default()
        };
        let err = Simulator::new(ft.topology(), bad, Policy::from_single_path(&router))
            .try_run(&Workload::uniform_random(10, 0.5), 1)
            .unwrap_err();
        assert_eq!(
            err,
            crate::SimError::Config(crate::ConfigError::ZeroQueueCapacity)
        );
    }

    #[test]
    fn midrun_fault_with_retry_reroutes_multipath() {
        // Kill one uplink of switch 0 mid-run. The random multipath policy
        // re-picks on every retransmission, so timed-out packets eventually
        // dodge the dead channel and still get delivered. VOQ arbitration
        // matters here: under HOL FIFO a dead-destined head blocks its whole
        // input queue for a full TTL, collateral timeouts retransmit, and
        // the retry storm feeds on itself. The TTL is also sized so
        // dead-destined packets expire before they clog the shared input
        // buffer (accumulation rate x TTL < queue capacity).
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_500,
            ttl_cycles: 60,
            retry: true,
            retry_limit: 10,
            drain: true,
            arbiter: crate::config::Arbiter::Voq { iterations: 2 },
            ..SimConfig::default()
        };
        let mut faults = crate::FaultSchedule::new();
        faults.kill_channel(400, ft.up_channel(0, 1));
        let stats = Simulator::new(ft.topology(), config, Policy::from_multipath(&mp, true))
            .try_run_with_faults(&Workload::permutation(&perm, 0.6), 9, &faults)
            .unwrap();
        assert!(stats.timed_out_total > 0, "dead uplink must strand packets");
        assert!(stats.retries_total > 0, "retry must retransmit them");
        assert!(stats.delivered_total > 0);
        assert!(stats.conservation_ok(), "{stats:?}");
        // Re-picking among 4 uplinks with 10 retries: abandonment is
        // possible but rare; the bulk must get through.
        assert!(
            stats.delivered_total > stats.injected_total * 9 / 10,
            "delivered {} of {}",
            stats.delivered_total,
            stats.injected_total
        );
    }

    #[test]
    fn midrun_fault_fixed_path_abandons() {
        // A fixed single-path policy re-picks the same dead path forever,
        // so with retries off every timed-out packet on the dead uplink is
        // abandoned — the contrast to the multipath test above.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_500,
            ttl_cycles: 40,
            drain: true,
            ..SimConfig::default()
        };
        // Kill every uplink of switch 0: its flows have no live fixed path.
        let mut faults = crate::FaultSchedule::new();
        for t in 0..4 {
            faults.kill_channel(400, ft.up_channel(0, t));
        }
        let stats = Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
            .try_run_with_faults(&Workload::permutation(&perm, 0.6), 9, &faults)
            .unwrap();
        assert!(stats.abandoned_total > 0, "stranded flows must be dropped");
        assert_eq!(stats.retries_total, 0, "retry is off");
        assert!(stats.delivered_total > 0, "unaffected switches still flow");
        assert!(stats.conservation_ok(), "{stats:?}");
    }

    #[test]
    fn fault_free_run_with_ttl_never_times_out() {
        // A generous TTL on a healthy nonblocking fabric is inert: no
        // timeouts, no retries, no drops — stats match a ttl-off run.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 4);
        let config = SimConfig {
            ttl_cycles: 10_000,
            retry: true,
            retry_limit: 3,
            ..cfg()
        };
        let stats = Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
            .try_run(&Workload::permutation(&perm, 0.9), 13)
            .unwrap();
        assert_eq!(stats.timed_out_total, 0);
        assert_eq!(stats.retries_total, 0);
        assert_eq!(stats.abandoned_total, 0);
        assert!(stats.accepted_throughput() > 0.85);
    }

    #[test]
    fn voq_islip_respects_dead_channels() {
        // Same stranded-flow scenario under the VOQ/iSLIP arbiter: dead
        // channels grant nothing, TTL cleans up, conservation holds.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_000,
            ttl_cycles: 40,
            drain: true,
            arbiter: crate::config::Arbiter::Voq { iterations: 2 },
            ..SimConfig::default()
        };
        let mut faults = crate::FaultSchedule::new();
        for t in 0..4 {
            faults.kill_channel(300, ft.up_channel(0, t));
        }
        let stats = Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
            .try_run_with_faults(&Workload::permutation(&perm, 0.6), 17, &faults)
            .unwrap();
        assert!(stats.abandoned_total > 0);
        assert!(stats.delivered_total > 0);
        assert!(stats.conservation_ok(), "{stats:?}");
    }

    #[test]
    fn revival_restores_fixed_path_delivery() {
        // Outage and repair on a pinned single path: flows over switch 0
        // strand (and drop) while its uplinks are down, then flow again
        // after the revival — throughput in the final epoch recovers to the
        // pre-outage steady state.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 2_000,
            ttl_cycles: 40,
            drain: true,
            ..SimConfig::default()
        };
        let mut schedule = crate::ChurnSchedule::new();
        for t in 0..4 {
            schedule.kill_channel(600, ft.up_channel(0, t));
            schedule.revive_channel(1_200, ft.up_channel(0, t));
        }
        let churn = crate::ChurnConfig {
            mode: crate::ReplanMode::Pinned,
            epsilon: 0.1,
            recovery_window: 100,
        };
        let (stats, report) =
            Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
                .try_run_churn(&Workload::permutation(&perm, 0.6), 21, &schedule, &churn)
                .unwrap();
        assert!(stats.abandoned_total > 0, "outage must drop packets");
        assert!(stats.conservation_ok(), "{stats:?}");
        // Epochs: [0, 600) baseline, [600, 1200) outage, [1200, end) repaired.
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.epochs[1].downs, 4);
        assert_eq!(report.epochs[2].ups, 4);
        assert!(report.steady_rate > 0.0);
        let outage = &report.epochs[1];
        let repaired = &report.epochs[2];
        assert!(
            repaired.delivered_rate() > outage.delivered_rate(),
            "revival must lift throughput: {} vs {}",
            repaired.delivered_rate(),
            outage.delivered_rate()
        );
        assert!(
            repaired.reconverged_after.is_some(),
            "post-repair epoch must return to steady state: {report:?}"
        );
        assert!(outage.abandoned > 0);
        // Per-epoch counters must tile the run totals (conservation across
        // the revival boundary).
        let (inj, del, ab) = report.totals();
        assert_eq!(inj, stats.injected_total);
        assert_eq!(del, stats.delivered_total);
        assert_eq!(ab, stats.abandoned_total);
        assert_eq!(report.packets_lost(), stats.abandoned_total);
    }

    #[test]
    fn hysteresis_beats_per_cycle_replanning_under_flapping() {
        // A flapping uplink with short stable windows: per-cycle
        // re-planning readmits the link the moment it revives and strands
        // the packets it then routes onto it, while hysteresis with
        // K > the up-interval never trusts it again. Same seed, same
        // schedule — hysteresis must deliver strictly more.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 3_000,
            ttl_cycles: 50,
            drain: true,
            arbiter: crate::config::Arbiter::Voq { iterations: 2 },
            ..SimConfig::default()
        };
        // Down 100 cycles, up 20 cycles, repeated.
        let flapper = ft.up_channel(0, 1);
        let mut schedule = crate::ChurnSchedule::new();
        let mut t = 400;
        while t < 3_000 {
            schedule.kill_link(t, ft.topology(), flapper);
            schedule.revive_link(t + 100, ft.topology(), flapper);
            t += 120;
        }
        let run = |mode: crate::ReplanMode| {
            let churn = crate::ChurnConfig {
                mode,
                epsilon: 0.1,
                recovery_window: 50,
            };
            Simulator::new(ft.topology(), config, Policy::from_multipath(&mp, true))
                .try_run_churn(&Workload::permutation(&perm, 0.6), 33, &schedule, &churn)
                .unwrap()
        };
        let (per_cycle, _) = run(crate::ReplanMode::PerCycle);
        let (hysteresis, _) = run(crate::ReplanMode::Hysteresis { k: 200 });
        assert!(per_cycle.conservation_ok());
        assert!(hysteresis.conservation_ok());
        assert!(
            hysteresis.delivered_total > per_cycle.delivered_total,
            "hysteresis {} must beat per-cycle {}",
            hysteresis.delivered_total,
            per_cycle.delivered_total
        );
        assert!(
            hysteresis.timed_out_total < per_cycle.timed_out_total,
            "damping must cut timeouts: {} vs {}",
            hysteresis.timed_out_total,
            per_cycle.timed_out_total
        );
    }

    #[test]
    fn per_cycle_replanning_beats_pinned_routing() {
        // Pinned multipath keeps spraying packets onto the dead link for
        // the whole outage; per-cycle masking stops doing so immediately.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 2_000,
            ttl_cycles: 50,
            drain: true,
            arbiter: crate::config::Arbiter::Voq { iterations: 2 },
            ..SimConfig::default()
        };
        let mut schedule = crate::ChurnSchedule::new();
        schedule.kill_link(400, ft.topology(), ft.up_channel(0, 1));
        let run = |mode: crate::ReplanMode| {
            let churn = crate::ChurnConfig {
                mode,
                ..crate::ChurnConfig::default()
            };
            Simulator::new(ft.topology(), config, Policy::from_multipath(&mp, true))
                .try_run_churn(&Workload::permutation(&perm, 0.6), 5, &schedule, &churn)
                .unwrap()
        };
        let (pinned, _) = run(crate::ReplanMode::Pinned);
        let (per_cycle, _) = run(crate::ReplanMode::PerCycle);
        assert!(
            per_cycle.timed_out_total < pinned.timed_out_total,
            "masking must avoid the dead link: {} vs {}",
            per_cycle.timed_out_total,
            pinned.timed_out_total
        );
        assert!(per_cycle.delivered_total >= pinned.delivered_total);
    }

    #[test]
    fn recorded_run_matches_plain_and_conserves_per_epoch() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 2);
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 1_500,
            ttl_cycles: 40,
            drain: true,
            ..SimConfig::default()
        };
        let mut faults = crate::FaultSchedule::new();
        for t in 0..4 {
            faults.kill_channel(400, ft.up_channel(0, t));
            faults.revive_channel(900, ft.up_channel(0, t));
        }
        let w = Workload::permutation(&perm, 0.6);
        let plain = Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
            .try_run_with_faults(&w, 9, &faults)
            .unwrap();
        let reg = ftclos_obs::Registry::new();
        let recorded = Simulator::new(ft.topology(), config, Policy::from_single_path(&router))
            .try_run_with_faults_recorded(&w, 9, &faults, &reg)
            .unwrap();
        assert_eq!(plain, recorded, "recording must not perturb the run");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.injected"), Some(plain.injected_total));
        assert_eq!(snap.counter("sim.delivered"), Some(plain.delivered_total));
        assert_eq!(snap.counter("sim.abandoned"), Some(plain.abandoned_total));
        assert_eq!(snap.gauge("sim.in_flight"), Some(plain.leftover_packets));
        assert!(snap.spans.iter().any(|s| s.path == "sim.run"));
        // Epochs: one per transition cycle (400 and 900) plus the final
        // "end" mark, each conserving injected = delivered + abandoned +
        // in-flight at its boundary.
        assert_eq!(snap.epochs.len(), 3);
        assert_eq!(snap.epochs[0].label, "cycle=400");
        assert_eq!(snap.epochs[1].label, "cycle=900");
        assert_eq!(snap.epochs[2].label, "end");
        for e in &snap.epochs {
            assert_eq!(
                e.counter("sim.injected"),
                e.counter("sim.delivered") + e.counter("sim.abandoned") + e.gauge("sim.in_flight"),
                "epoch {} must conserve packets",
                e.label
            );
        }
    }

    #[test]
    fn churn_run_without_events_matches_plain_run() {
        // An empty schedule under any replan mode is exactly the fault-free
        // run: one baseline epoch, no transitions, equal stats.
        let ft = Ftree::new(2, 4, 5).unwrap();
        let router = YuanDeterministic::new(&ft).unwrap();
        let perm = patterns::shift(10, 4);
        let plain = Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&router))
            .try_run(&Workload::permutation(&perm, 0.9), 13)
            .unwrap();
        let (churned, report) =
            Simulator::new(ft.topology(), cfg(), Policy::from_single_path(&router))
                .try_run_churn(
                    &Workload::permutation(&perm, 0.9),
                    13,
                    &crate::ChurnSchedule::new(),
                    &crate::ChurnConfig::default(),
                )
                .unwrap();
        assert_eq!(plain, churned);
        assert_eq!(report.epochs.len(), 1);
        assert_eq!(report.transitions(), 0);
        assert!(report.steady_rate > 0.0);
    }
}
