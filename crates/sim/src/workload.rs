//! Traffic workloads for the simulator.

use ftclos_traffic::Permutation;

/// Which destination each source sends to, and how often.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Per-leaf destination: `dest[s] = Some(d)` makes leaf `s` an active
    /// source toward `d`; `None` leaves it idle. `UniformRandom` sources
    /// draw a fresh destination per packet instead.
    kind: WorkloadKind,
    /// Packet injection probability per source per cycle.
    rate: f64,
}

#[derive(Clone, Debug)]
enum WorkloadKind {
    /// Fixed destinations (permutation traffic).
    Fixed(Vec<Option<u32>>),
    /// Every leaf sends; destination uniform over all other leaves.
    UniformRandom { ports: u32 },
    /// Every leaf sends to one hot leaf (except the hot leaf itself).
    HotSpot { ports: u32, hot: u32 },
}

impl Workload {
    /// Permutation traffic: each source of `perm` injects toward its fixed
    /// destination with probability `rate` per cycle. Self-pairs are kept
    /// (they are delivered instantly and exercise the accounting).
    pub fn permutation(perm: &Permutation, rate: f64) -> Self {
        let mut dest = vec![None; perm.ports() as usize];
        for p in perm.pairs() {
            dest[p.src as usize] = Some(p.dst);
        }
        Self {
            kind: WorkloadKind::Fixed(dest),
            rate,
        }
    }

    /// Fixed-pair traffic over an explicit pair list: each listed `(s, d)`
    /// makes leaf `s` inject toward `d` at `rate`. A leaf has one injection
    /// queue and one fixed destination, so on a duplicate source the
    /// *first* pair wins (deterministic for witness-injection callers that
    /// list one route per cycle edge).
    pub fn fixed_pairs(ports: u32, pairs: &[(u32, u32)], rate: f64) -> Self {
        let mut dest = vec![None; ports as usize];
        for &(s, d) in pairs {
            let slot = &mut dest[s as usize];
            if slot.is_none() {
                *slot = Some(d);
            }
        }
        Self {
            kind: WorkloadKind::Fixed(dest),
            rate,
        }
    }

    /// Uniform-random traffic over `ports` leaves at `rate`.
    pub fn uniform_random(ports: u32, rate: f64) -> Self {
        Self {
            kind: WorkloadKind::UniformRandom { ports },
            rate,
        }
    }

    /// Hot-spot traffic: all leaves send to `hot`.
    pub fn hotspot(ports: u32, hot: u32, rate: f64) -> Self {
        Self {
            kind: WorkloadKind::HotSpot { ports, hot },
            rate,
        }
    }

    /// Injection probability per source per cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Number of leaves that ever inject.
    pub fn active_sources(&self) -> usize {
        match &self.kind {
            WorkloadKind::Fixed(dest) => dest.iter().filter(|d| d.is_some()).count(),
            WorkloadKind::UniformRandom { ports } => *ports as usize,
            WorkloadKind::HotSpot { ports, .. } => *ports as usize - 1,
        }
    }

    /// Universe size.
    pub fn ports(&self) -> u32 {
        match &self.kind {
            WorkloadKind::Fixed(dest) => dest.len() as u32,
            WorkloadKind::UniformRandom { ports } | WorkloadKind::HotSpot { ports, .. } => *ports,
        }
    }

    /// The destination for a packet from `src` this cycle, or `None` if
    /// `src` never injects. Random workloads consult `draw` (a uniform
    /// sample in `0..ports-1` excluding `src`, supplied by the engine's
    /// RNG). A `src` outside the workload's universe never injects (rather
    /// than panicking on a topology with more leaves than the pattern).
    pub fn destination(&self, src: u32, mut draw: impl FnMut(u32) -> u32) -> Option<u32> {
        match &self.kind {
            WorkloadKind::Fixed(dest) => dest.get(src as usize).copied().flatten(),
            WorkloadKind::UniformRandom { ports } => {
                let x = draw(*ports - 1);
                Some(if x >= src { x + 1 } else { x })
            }
            WorkloadKind::HotSpot { hot, .. } => (src != *hot).then_some(*hot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_traffic::SdPair;

    #[test]
    fn permutation_workload() {
        let perm = Permutation::from_pairs(6, [SdPair::new(0, 3), SdPair::new(2, 1)]).unwrap();
        let w = Workload::permutation(&perm, 0.5);
        assert_eq!(w.active_sources(), 2);
        assert_eq!(w.ports(), 6);
        assert_eq!(w.destination(0, |_| 0), Some(3));
        assert_eq!(w.destination(1, |_| 0), None);
        assert_eq!(w.rate(), 0.5);
    }

    #[test]
    fn uniform_random_skips_self() {
        let w = Workload::uniform_random(8, 1.0);
        assert_eq!(w.active_sources(), 8);
        // draw returns 3 -> for src 3 the destination shifts to 4.
        assert_eq!(w.destination(3, |_| 3), Some(4));
        assert_eq!(w.destination(5, |_| 3), Some(3));
    }

    #[test]
    fn hotspot_excludes_hot_source() {
        let w = Workload::hotspot(4, 2, 1.0);
        assert_eq!(w.active_sources(), 3);
        assert_eq!(w.destination(2, |_| 0), None);
        assert_eq!(w.destination(0, |_| 0), Some(2));
    }
}
