//! # ftclos-sim — cycle-level packet simulation of folded-Clos fabrics
//!
//! The paper's motivation rests on the observation (refs \[5\], \[7\]) that
//! "nonblocking" fat-trees with distributed control deliver far less than
//! crossbar throughput under permutation traffic. This crate reproduces that
//! behaviour with a synchronous cycle-level model:
//!
//! * input-queued switches with per-input FIFOs and round-robin output
//!   arbitration (one packet per output channel per cycle),
//! * credit-style backpressure (a packet advances only if the downstream
//!   queue has space),
//! * open-loop Bernoulli injection at the leaves,
//! * pluggable path selection ([`Policy`]): fixed assignments (from any
//!   pattern router), per-packet oblivious multipath (round-robin or
//!   random), and local queue-length-adaptive selection at the source
//!   switch — adaptivity only at the input switch, exactly the locality the
//!   paper's Section V argues is all a fat-tree has.
//!
//! The headline experiment (E11): under random permutations, the Theorem 3
//! fabric and a crossbar deliver ~100% throughput while a same-cost
//! rearrangeable fat-tree with `d mod k` routing saturates well below.
//!
//! ```
//! use ftclos_sim::{Policy, SimConfig, Simulator, Workload};
//! use ftclos_topo::Ftree;
//! use ftclos_routing::YuanDeterministic;
//! use ftclos_traffic::patterns;
//! use rand::SeedableRng;
//!
//! let ft = Ftree::new(2, 4, 5).unwrap();
//! let router = YuanDeterministic::new(&ft).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let perm = patterns::random_full(10, &mut rng);
//! let policy = Policy::from_single_path(&router);
//! let cfg = SimConfig { warmup_cycles: 100, measure_cycles: 400, ..SimConfig::default() };
//! let stats = Simulator::new(ft.topology(), cfg, policy)
//!     .run(&Workload::permutation(&perm, 0.9), 42);
//! assert!(stats.accepted_throughput() > 0.85); // nonblocking ≈ line rate
//! ```

pub mod batch;
pub mod churn;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod policy;
pub mod state;
pub mod stats;
pub mod witness;
pub mod workload;

pub use batch::{sweep_injection_rates, sweep_injection_rates_isolated, ThroughputPoint};
#[doc(hidden)]
pub use churn::{build_report, EpochMark};
pub use churn::{ChurnConfig, ChurnReport, EpochStats, ReplanMode};
pub use config::{Arbiter, SimConfig};
pub use engine::Simulator;
pub use error::{ConfigError, SimError, StallReport, Strand};
pub use fault::{ChurnSchedule, FaultEvent, FaultSchedule};
pub use policy::Policy;
#[doc(hidden)]
pub use state::{stall_report, Packet};
pub use state::{PagedVec, SimArena};
pub use stats::{ChannelBusy, SimStats, UtilizationHistogram};
pub use witness::{
    run_pinned_injection, run_pinned_injection_recorded, run_pinned_injection_watchdog,
    run_pinned_injection_watchdog_recorded, PinnedRoute, WitnessRun,
};
pub use workload::Workload;
