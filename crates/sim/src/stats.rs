//! Simulation statistics.

use crate::state::PagedVec;
use serde::{Deserialize, Serialize};

/// Counters collected over a run; latency figures cover packets *delivered
/// inside the measurement window* only.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Cycles in the measurement window.
    pub window_cycles: u64,
    /// Leaves that injected at least once over the whole run.
    pub active_sources: usize,
    /// Packets injected during the measurement window.
    pub injected_in_window: u64,
    /// Packets delivered during the measurement window.
    pub delivered_in_window: u64,
    /// Total packets injected (including warm-up).
    pub injected_total: u64,
    /// Total packets delivered (including warm-up).
    pub delivered_total: u64,
    /// Sum of end-to-end latencies (cycles) of window deliveries.
    pub latency_sum: u64,
    /// Max end-to-end latency of a window delivery.
    pub latency_max: u64,
    /// Median end-to-end latency of window deliveries.
    pub latency_p50: u64,
    /// 95th-percentile end-to-end latency of window deliveries.
    pub latency_p95: u64,
    /// 99th-percentile end-to-end latency of window deliveries.
    pub latency_p99: u64,
    /// Injections refused because a bounded injection queue was full.
    pub injection_refusals: u64,
    /// Timeout events: a packet exceeded its TTL and was dropped where it
    /// waited (each retransmission that later times out counts again).
    pub timed_out_total: u64,
    /// Retransmissions injected after a timeout (`retry` enabled).
    pub retries_total: u64,
    /// Packets dropped for good: timed out with retries off or exhausted,
    /// or no path available at retransmission time.
    pub abandoned_total: u64,
    /// Packets still in the network when the run ended (0 after a
    /// successful drain; packet conservation is
    /// `injected_total == delivered_total + leftover_packets +
    /// abandoned_total` — see [`SimStats::conservation_ok`]).
    pub leftover_packets: u64,
    /// Offered injection rate (packets/cycle/source) of the workload.
    pub offered_rate: f64,
    /// Per-channel busy cycles during the measurement window, indexed by
    /// channel id. Divide by `window_cycles` for utilization. Accumulated
    /// sparsely — memory scales with channels that carried traffic, not
    /// with fabric size; see [`ChannelBusy`].
    pub channel_busy: ChannelBusy,
}

impl SimStats {
    /// Delivered packets per cycle per active source during the window —
    /// the *accepted throughput* as a fraction of link rate.
    pub fn accepted_throughput(&self) -> f64 {
        if self.window_cycles == 0 || self.active_sources == 0 {
            return 0.0;
        }
        self.delivered_in_window as f64 / (self.window_cycles as f64 * self.active_sources as f64)
    }

    /// Accepted throughput normalized by the offered rate (1.0 = the fabric
    /// keeps up with injection).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered_rate <= 0.0 {
            return 1.0;
        }
        (self.accepted_throughput() / self.offered_rate).min(f64::INFINITY)
    }

    /// Packet conservation: every injected packet is delivered, still
    /// queued, or abandoned — nothing is silently lost.
    pub fn conservation_ok(&self) -> bool {
        self.injected_total == self.delivered_total + self.leftover_packets + self.abandoned_total
    }

    /// Fraction of injected packets dropped for good.
    pub fn abandoned_fraction(&self) -> f64 {
        if self.injected_total == 0 {
            0.0
        } else {
            self.abandoned_total as f64 / self.injected_total as f64
        }
    }

    /// Mean end-to-end latency of window deliveries, in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.delivered_in_window == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / self.delivered_in_window as f64
    }

    /// Utilization of channel `id` over the window, in `[0, 1]`.
    pub fn channel_utilization(&self, id: usize) -> f64 {
        if self.window_cycles == 0 {
            return 0.0;
        }
        self.channel_busy.get(id) as f64 / self.window_cycles as f64
    }

    /// The `k` busiest channels as `(channel index, utilization)`, sorted
    /// descending — the congestion hot spots.
    pub fn hottest_channels(&self, k: usize) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, u64)> = self.channel_busy.nonzero().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v.into_iter()
            .map(|(i, _)| (i, self.channel_utilization(i)))
            .collect()
    }

    /// Histogram of per-channel utilizations over the measurement window,
    /// counting only channels that carried traffic.
    pub fn utilization_histogram(&self) -> UtilizationHistogram {
        UtilizationHistogram::from_utilizations(
            self.channel_busy
                .nonzero()
                .map(|(i, _)| self.channel_utilization(i)),
        )
    }
}

/// Per-channel busy-cycle accumulator with sparse, lazily-paged backing.
///
/// Semantically a `vec![0u64; num_channels]`; physically it materializes
/// only the pages of channels that actually accumulated busy cycles, so a
/// million-host run's stats cost `O(traffic-carrying channels)` instead of
/// one word per directed channel. Equality, accessors, and iteration are
/// defined over *logical* content — two accumulators with the same length
/// and the same nonzero entries are equal regardless of which pages happen
/// to be materialized — which is what keeps [`SimStats`] byte-identical
/// between the dense-prefilled and sparse engine configurations.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChannelBusy {
    busy: PagedVec<u64>,
}

impl ChannelBusy {
    /// A logical all-zeros accumulator for `num_channels` channels.
    pub fn zeros(num_channels: usize) -> Self {
        Self {
            busy: PagedVec::new(num_channels, 0),
        }
    }

    /// Logical length (the fabric's channel count).
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.busy.is_empty()
    }

    /// Accumulate `cycles` busy cycles on channel `id`.
    ///
    /// # Panics
    /// If `id >= len()`.
    #[inline]
    pub fn add(&mut self, id: usize, cycles: u64) {
        *self.busy.get_mut(id) += cycles;
    }

    /// Busy cycles of channel `id` (0 when untouched or out of range).
    pub fn get(&self, id: usize) -> u64 {
        if id < self.busy.len() {
            *self.busy.get(id)
        } else {
            0
        }
    }

    /// `(channel id, busy cycles)` for channels with nonzero counts,
    /// ascending by id.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.busy
            .iter_touched()
            .filter(|&(_, &b)| b > 0)
            .map(|(i, &b)| (i, b))
    }

    /// Densify on demand into the historical `Vec<u64>` layout.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.busy.len()];
        for (i, b) in self.nonzero() {
            v[i] = b;
        }
        v
    }

    /// Channels covered by materialized pages (accounting, not semantics).
    pub fn touched_channels(&self) -> usize {
        self.busy.touched_entries()
    }

    /// Backing bytes currently allocated.
    pub fn state_bytes(&self) -> usize {
        self.busy.state_bytes()
    }
}

impl PartialEq for ChannelBusy {
    fn eq(&self, other: &Self) -> bool {
        self.busy.len() == other.busy.len() && self.nonzero().eq(other.nonzero())
    }
}

impl From<Vec<u64>> for ChannelBusy {
    fn from(dense: Vec<u64>) -> Self {
        let mut cb = Self::zeros(dense.len());
        for (i, b) in dense.into_iter().enumerate() {
            if b > 0 {
                cb.add(i, b);
            }
        }
        cb
    }
}

/// Fixed-bucket histogram of link utilizations in `[0, 1]`, shared by the
/// packet engine and the fluid flow-rate simulator so both report
/// congestion in the same shape.
///
/// Ten equal buckets: `[0.0, 0.1), [0.1, 0.2), …, [0.9, 1.0]`; a
/// utilization of exactly `1.0` (a saturated link) lands in the last
/// bucket. Values outside `[0, 1]` are clamped.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationHistogram {
    /// Channel counts per decile bucket.
    pub buckets: [u64; 10],
}

impl UtilizationHistogram {
    /// Bucket a stream of utilizations.
    pub fn from_utilizations(values: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Self::default();
        for u in values {
            h.add(u);
        }
        h
    }

    /// Add one utilization sample (clamped to `[0, 1]`; NaN counts as 0).
    pub fn add(&mut self, u: f64) {
        let u = if u.is_nan() { 0.0 } else { u.clamp(0.0, 1.0) };
        let idx = ((u * 10.0) as usize).min(9);
        self.buckets[idx] += 1;
    }

    /// Total samples bucketed.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Channels in the last bucket (utilization in `[0.9, 1.0]`) — the
    /// saturated tail.
    pub fn saturated(&self) -> u64 {
        self.buckets[9]
    }

    /// Render as a compact `a/b/…/j` decile string for text reports.
    pub fn to_compact_string(&self) -> String {
        self.buckets
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join("/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            window_cycles: 100,
            active_sources: 10,
            delivered_in_window: 800,
            latency_sum: 4_000,
            latency_max: 30,
            offered_rate: 1.0,
            ..SimStats::default()
        };
        assert!((s.accepted_throughput() - 0.8).abs() < 1e-12);
        assert!((s.delivery_ratio() - 0.8).abs() < 1e-12);
        assert!((s.mean_latency() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let s = SimStats::default();
        assert_eq!(s.accepted_throughput(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.delivery_ratio(), 1.0);
        assert_eq!(s.channel_utilization(0), 0.0);
        assert!(s.hottest_channels(3).is_empty());
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let mut h = UtilizationHistogram::from_utilizations([0.0, 0.05, 0.15, 0.95, 1.0]);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.total(), 5);
        h.add(2.0); // clamps into the saturated bucket
        h.add(f64::NAN); // counts as zero
        assert_eq!(h.saturated(), 3);
        assert_eq!(h.buckets[0], 3);
        assert_eq!(h.to_compact_string(), "3/1/0/0/0/0/0/0/0/3");
    }

    #[test]
    fn stats_histogram_counts_used_channels_only() {
        let s = SimStats {
            window_cycles: 100,
            channel_busy: vec![0, 50, 100, 25].into(),
            ..SimStats::default()
        };
        let h = s.utilization_histogram();
        assert_eq!(h.total(), 3, "idle channel excluded");
        assert_eq!(h.saturated(), 1);
        assert_eq!(h.buckets[5], 1);
        assert_eq!(h.buckets[2], 1);
    }

    #[test]
    fn utilization_and_hotspots() {
        let s = SimStats {
            window_cycles: 100,
            channel_busy: vec![0, 50, 100, 25].into(),
            ..SimStats::default()
        };
        assert_eq!(s.channel_utilization(2), 1.0);
        assert_eq!(s.channel_utilization(3), 0.25);
        assert_eq!(s.channel_utilization(99), 0.0);
        let hot = s.hottest_channels(2);
        assert_eq!(hot, vec![(2, 1.0), (1, 0.5)]);
    }

    #[test]
    fn channel_busy_equality_is_logical_not_physical() {
        // Sparse accumulation vs. dense conversion: same logical content,
        // different materialized pages — must compare equal.
        let mut sparse = ChannelBusy::zeros(10_000);
        sparse.add(7, 3);
        sparse.add(9_999, 5);
        let dense: ChannelBusy = {
            let mut v = vec![0u64; 10_000];
            v[7] = 3;
            v[9_999] = 5;
            v.into()
        };
        assert_eq!(sparse, dense);
        assert_eq!(sparse.to_vec(), dense.to_vec());
        assert!(sparse.touched_channels() < dense.len());
        let mut other = ChannelBusy::zeros(10_000);
        other.add(7, 3);
        assert_ne!(sparse, other);
        assert_ne!(sparse, ChannelBusy::zeros(9_999), "length matters");
        assert_eq!(sparse.get(7), 3);
        assert_eq!(sparse.get(8), 0);
        assert_eq!(sparse.get(123_456), 0, "out of range reads 0");
        assert_eq!(
            sparse.nonzero().collect::<Vec<_>>(),
            vec![(7, 3), (9_999, 5)]
        );
    }
}
