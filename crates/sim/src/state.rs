//! Paged lazy simulator state — `O(touched)` memory on sparse runs.
//!
//! Both engines (the cycle oracle here and the event-driven engine in
//! `ftclos-evsim`) index their mutable state by channel id: packet queues,
//! arbiter pointers, wire-busy deadlines, and liveness flags. Dense
//! `vec![default; num_channels]` allocation is what capped the simulators
//! near 100k hosts: a `RecursiveNonblocking(24)` fabric has ~415M directed
//! channels, so the dense arrays alone cost tens of gigabytes before the
//! first packet moves — even though a permutation workload touches a few
//! hundred thousand of them.
//!
//! [`PagedVec`] keeps the same indexed-array semantics with lazy backing
//! storage: a page directory maps fixed-size pages to slots allocated on
//! first *write*. Reads of untouched entries return the default value, which
//! every engine default synthesizes arithmetically (`VecDeque::new()`, `0`,
//! `false`) — so replay is bit-exact against the dense arrays by
//! construction. [`SimArena`] bundles the per-run state and retires pages
//! into a freelist on reset, amortizing allocation across batch sweeps,
//! fault campaigns, and churn replays instead of rebuilding per run.

use crate::error::{StallReport, Strand};
use ftclos_topo::ChannelId;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Log2 of the page size: 512 entries per page balances touch granularity
/// (a lone hot channel materializes ~16 KiB of queue slots) against
/// directory overhead (4 bytes per 512 entries, ~3 MiB at 415M channels).
pub const PAGE_SHIFT: usize = 9;
/// Entries per page.
pub const PAGE_LEN: usize = 1 << PAGE_SHIFT;

/// One in-flight packet, shared by both engines (identical layout and
/// semantics; the engines differ only in where they look for work).
#[derive(Clone, Debug)]
pub struct Packet {
    /// Source leaf id.
    pub src: u32,
    /// Destination leaf id.
    pub dst: u32,
    /// The channel walk from source to destination.
    pub path: Arc<[ChannelId]>,
    /// Index of the next channel to traverse.
    pub hop: usize,
    /// Cycle the original attempt was injected (kept across retries).
    pub inject_cycle: u64,
    /// Earliest cycle at which the packet may be granted its next hop
    /// (enforces one hop per cycle and multi-flit serialization).
    pub ready_at: u64,
    /// Cycle at which this attempt times out (`u64::MAX` when TTL is off).
    pub deadline: u64,
    /// Retransmissions already consumed.
    pub retries: u32,
}

/// A fixed-length array with page-granular lazy allocation.
///
/// Untouched entries read as the default value; the first mutable access to
/// an entry materializes its page (from the freelist when one is spare).
/// Page *placement* depends on touch order, but every observation — `get`,
/// [`PagedVec::iter_touched`], [`PagedVec::for_each_touched_mut`] — is in
/// ascending index order, so behavior never depends on access history.
#[derive(Clone, Debug)]
pub struct PagedVec<T> {
    len: usize,
    /// Page index -> slot + 1 in `pages`; `0` = untouched.
    dir: Vec<u32>,
    pages: Vec<Box<[T]>>,
    /// Retired pages kept across [`PagedVec::reset`] for reuse.
    spare: Vec<Box<[T]>>,
    default: T,
}

impl<T: Clone> PagedVec<T> {
    /// A length-`len` array where every entry reads as `default`.
    pub fn new(len: usize, default: T) -> Self {
        Self {
            len,
            dir: vec![0; len.div_ceil(PAGE_LEN)],
            pages: Vec::new(),
            spare: Vec::new(),
            default,
        }
    }

    /// Entry count (dense length, not touched count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dense length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read entry `i` without materializing its page.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        assert!(i < self.len, "PagedVec index {i} out of range {}", self.len);
        match self.dir[i >> PAGE_SHIFT] {
            0 => &self.default,
            slot => &self.pages[slot as usize - 1][i & (PAGE_LEN - 1)],
        }
    }

    /// Mutable access to entry `i`, materializing its page on first touch.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "PagedVec index {i} out of range {}", self.len);
        let p = i >> PAGE_SHIFT;
        if self.dir[p] == 0 {
            self.materialize(p);
        }
        let slot = self.dir[p] as usize - 1;
        &mut self.pages[slot][i & (PAGE_LEN - 1)]
    }

    fn materialize(&mut self, p: usize) {
        let page = match self.spare.pop() {
            Some(mut page) => {
                page.fill(self.default.clone());
                page
            }
            None => vec![self.default.clone(); PAGE_LEN].into_boxed_slice(),
        };
        self.pages.push(page);
        self.dir[p] = self.pages.len() as u32;
    }

    /// Entries of all touched pages in ascending index order (untouched
    /// entries of a touched page are included and read as default).
    pub fn iter_touched(&self) -> impl Iterator<Item = (usize, &T)> {
        self.dir
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| slot != 0)
            .flat_map(move |(p, &slot)| {
                let base = p << PAGE_SHIFT;
                self.pages[slot as usize - 1]
                    .iter()
                    .take(self.len - base)
                    .enumerate()
                    .map(move |(j, v)| (base + j, v))
            })
    }

    /// Fallible in-place visit of every touched entry, ascending.
    pub fn try_for_each_touched_mut<E>(
        &mut self,
        mut f: impl FnMut(usize, &mut T) -> Result<(), E>,
    ) -> Result<(), E> {
        for p in 0..self.dir.len() {
            let slot = self.dir[p];
            if slot == 0 {
                continue;
            }
            let base = p << PAGE_SHIFT;
            let take = PAGE_LEN.min(self.len - base);
            for (j, v) in self.pages[slot as usize - 1][..take].iter_mut().enumerate() {
                f(base + j, v)?;
            }
        }
        Ok(())
    }

    /// Number of materialized pages.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// Entries covered by materialized pages.
    pub fn touched_entries(&self) -> usize {
        self.dir
            .iter()
            .enumerate()
            .filter(|&(_, &slot)| slot != 0)
            .map(|(p, _)| PAGE_LEN.min(self.len - (p << PAGE_SHIFT)))
            .sum()
    }

    /// Whether page `p` is materialized.
    pub(crate) fn page_touched(&self, p: usize) -> bool {
        self.dir.get(p).is_some_and(|&slot| slot != 0)
    }

    /// Backing bytes: directory plus materialized and spare pages.
    /// Per-entry heap allocations (queue buffers) are not counted.
    pub fn state_bytes(&self) -> usize {
        self.dir.capacity() * std::mem::size_of::<u32>()
            + (self.pages.len() + self.spare.len()) * PAGE_LEN * std::mem::size_of::<T>()
    }

    /// Reset to a fresh length-`len` all-default array, retiring every
    /// materialized page into the freelist for reuse.
    pub fn reset(&mut self, len: usize) {
        self.spare.append(&mut self.pages);
        self.len = len;
        self.dir.clear();
        self.dir.resize(len.div_ceil(PAGE_LEN), 0);
    }

    /// Materialize every page (the dense-prefill mode differential tests
    /// use to pin sparse and dense behavior against each other).
    pub fn prefill(&mut self) {
        for p in 0..self.dir.len() {
            if self.dir[p] == 0 {
                self.materialize(p);
            }
        }
    }
}

/// The mutable per-run state of a simulator, with lazy paged backing.
///
/// Fields are public because the engines thread disjoint `&mut` borrows of
/// them through their phase helpers; treat the layout as engine-internal.
/// `prepare` resets all arrays for a run over a fabric with the given
/// shape; pages retired by the reset are reused, so repeated runs through
/// one arena (batch sweeps, campaign confirms, churn replays) stop paying
/// the allocation cost after the first.
#[derive(Clone, Debug, Default)]
pub struct SimArena {
    /// Per-channel queue of packets that crossed it, waiting at its dst.
    pub queues: PagedVec<VecDeque<Packet>>,
    /// Per-leaf-slot queue of injected packets awaiting their uplink.
    pub inject: PagedVec<VecDeque<Packet>>,
    /// Round-robin grant pointer per output channel (arbiter state).
    pub rr: PagedVec<u32>,
    /// iSLIP accept pointer per input channel.
    pub accept_ptr: PagedVec<u32>,
    /// Multi-flit serialization: a channel is busy until this cycle.
    pub busy_until: PagedVec<u64>,
    /// Channels killed by fault events grant no further packets.
    pub dead: PagedVec<bool>,
    /// When set, every `prepare` materializes all pages up front — the
    /// historical dense layout, kept for sparse-vs-dense differentials.
    prefill_on_prepare: bool,
}

impl SimArena {
    /// An empty arena; the first `prepare` shapes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset every array for a run over `num_channels` channels and
    /// `num_leaf_slots` injecting leaves.
    pub fn prepare(&mut self, num_channels: usize, num_leaf_slots: usize) {
        self.queues.reset(num_channels);
        self.inject.reset(num_leaf_slots);
        self.rr.reset(num_channels);
        self.accept_ptr.reset(num_channels);
        self.busy_until.reset(num_channels);
        self.dead.reset(num_channels);
        if self.prefill_on_prepare {
            self.prefill_dense();
        }
    }

    /// Make every future `prepare` materialize all pages (dense mode).
    /// Differential tests run an engine once lazily and once dense to pin
    /// bit-identity; there is no reason to enable this in production.
    pub fn set_prefill_on_prepare(&mut self, on: bool) {
        self.prefill_on_prepare = on;
    }

    /// Materialize every page of every array — the dense layout the
    /// engines had before paging, used by differential tests to pin
    /// sparse-vs-dense bit-identity.
    pub fn prefill_dense(&mut self) {
        self.queues.prefill();
        self.inject.prefill();
        self.rr.prefill();
        self.accept_ptr.prefill();
        self.busy_until.prefill();
        self.dead.prefill();
    }

    /// Channels resident in a materialized page of *any* channel-indexed
    /// array — the engine's working set, page-granular.
    pub fn touched_channels(&self) -> usize {
        let num_channels = self.queues.len();
        (0..self.queues.dir.len())
            .filter(|&p| {
                self.queues.page_touched(p)
                    || self.rr.page_touched(p)
                    || self.accept_ptr.page_touched(p)
                    || self.busy_until.page_touched(p)
                    || self.dead.page_touched(p)
            })
            .map(|p| PAGE_LEN.min(num_channels - (p << PAGE_SHIFT)))
            .sum()
    }

    /// Total backing bytes across all arrays (directories, materialized
    /// pages, and spare pages; per-packet heap is not counted).
    pub fn state_bytes(&self) -> usize {
        self.queues.state_bytes()
            + self.inject.state_bytes()
            + self.rr.state_bytes()
            + self.accept_ptr.state_bytes()
            + self.busy_until.state_bytes()
            + self.dead.state_bytes()
    }
}

impl<T: Clone + Default> Default for PagedVec<T> {
    fn default() -> Self {
        Self::new(0, T::default())
    }
}

/// Build the stall watchdog's diagnosis from the frozen queue state: one
/// [`Strand`] per blocked queue head (channel queues by ascending id, then
/// injection queues by slot) and the credit wait-for cycle among held
/// channels, if one exists. Shared by both engines; iterating touched
/// pages only is exact because untouched queues are empty.
pub fn stall_report(
    cycle: u64,
    in_flight: u64,
    queues: &PagedVec<VecDeque<Packet>>,
    inject: &PagedVec<VecDeque<Packet>>,
) -> StallReport {
    let mut strands = Vec::new();
    // Functional wait-for graph over channels: the head packet of channel
    // `c`'s queue waits for `waits[c]` (absent when the queue is empty).
    let mut waits: BTreeMap<u32, ChannelId> = BTreeMap::new();
    for (c, q) in queues.iter_touched() {
        let Some(p) = q.front() else { continue };
        let Some(&next) = p.path.get(p.hop) else {
            continue; // defensive: delivered packets never sit in queues
        };
        strands.push(Strand {
            src: p.src,
            dst: p.dst,
            holds: Some(ChannelId(c as u32)),
            waits_for: next,
            queued: q.len(),
        });
        waits.insert(c as u32, next);
    }
    for (_, q) in inject.iter_touched() {
        let Some(p) = q.front() else { continue };
        let Some(&next) = p.path.get(p.hop) else {
            continue;
        };
        strands.push(Strand {
            src: p.src,
            dst: p.dst,
            holds: None,
            waits_for: next,
            queued: q.len(),
        });
    }
    StallReport {
        cycle,
        in_flight,
        strands,
        wait_cycle: find_wait_cycle(&waits),
    }
}

/// First cycle of the functional graph `waits`, walking from the lowest
/// channel id; rotated to start at its smallest member. Identical to the
/// historical dense scan: channels absent from the map are exactly the
/// `None` entries the dense walk colored and broke on.
fn find_wait_cycle(waits: &BTreeMap<u32, ChannelId>) -> Vec<ChannelId> {
    // Missing = unvisited, 1 = on the current walk, 2 = exhausted.
    let mut color: BTreeMap<u32, u8> = BTreeMap::new();
    for &start in waits.keys() {
        if color.contains_key(&start) {
            continue;
        }
        let mut walk: Vec<u32> = Vec::new();
        let mut cur = start;
        loop {
            color.insert(cur, 1);
            walk.push(cur);
            let Some(next) = waits.get(&cur).map(|c| c.0) else {
                break;
            };
            match color.get(&next) {
                Some(2) => break,
                Some(_) => {
                    // Found a cycle: the walk tail from `next`'s position.
                    let pos = walk.iter().position(|&c| c == next).unwrap_or(0);
                    let mut cycle: Vec<ChannelId> =
                        walk[pos..].iter().map(|&c| ChannelId(c)).collect();
                    if let Some(min_pos) = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, c)| c.0)
                        .map(|(i, _)| i)
                    {
                        cycle.rotate_left(min_pos);
                    }
                    return cycle;
                }
                None => cur = next,
            }
        }
        for c in walk {
            color.insert(c, 2);
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_default_and_allocates_nothing() {
        let v: PagedVec<u64> = PagedVec::new(10 * PAGE_LEN, 7);
        assert_eq!(v.len(), 10 * PAGE_LEN);
        assert_eq!(*v.get(0), 7);
        assert_eq!(*v.get(10 * PAGE_LEN - 1), 7);
        assert_eq!(v.touched_pages(), 0);
        assert_eq!(v.touched_entries(), 0);
        assert_eq!(v.iter_touched().count(), 0);
    }

    #[test]
    fn writes_materialize_only_their_page() {
        let mut v: PagedVec<u32> = PagedVec::new(4 * PAGE_LEN + 3, 0);
        *v.get_mut(PAGE_LEN + 1) = 11;
        *v.get_mut(4 * PAGE_LEN + 2) = 22; // partial last page
        assert_eq!(v.touched_pages(), 2);
        assert_eq!(v.touched_entries(), PAGE_LEN + 3);
        assert_eq!(*v.get(PAGE_LEN + 1), 11);
        assert_eq!(*v.get(PAGE_LEN), 0, "same page, untouched entry");
        assert_eq!(*v.get(0), 0, "untouched page");
        let touched: Vec<(usize, u32)> = v.iter_touched().map(|(i, &x)| (i, x)).collect();
        assert_eq!(touched.len(), PAGE_LEN + 3);
        assert!(touched.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
        assert_eq!(touched[1], (PAGE_LEN + 1, 11));
        assert_eq!(touched[PAGE_LEN + 2], (4 * PAGE_LEN + 2, 22));
    }

    #[test]
    fn ascending_iteration_is_independent_of_touch_order() {
        let mut a: PagedVec<u32> = PagedVec::new(3 * PAGE_LEN, 0);
        let mut b = a.clone();
        *a.get_mut(0) = 1;
        *a.get_mut(2 * PAGE_LEN) = 3;
        *b.get_mut(2 * PAGE_LEN) = 3;
        *b.get_mut(0) = 1;
        let pa: Vec<_> = a.iter_touched().map(|(i, &x)| (i, x)).collect();
        let pb: Vec<_> = b.iter_touched().map(|(i, &x)| (i, x)).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn reset_retires_pages_into_freelist_and_clears_values() {
        let mut v: PagedVec<u64> = PagedVec::new(2 * PAGE_LEN, 0);
        *v.get_mut(0) = 9;
        *v.get_mut(PAGE_LEN) = 9;
        let bytes_before = v.state_bytes();
        v.reset(2 * PAGE_LEN);
        assert_eq!(v.touched_pages(), 0);
        assert_eq!(*v.get(0), 0, "reset entry reads default again");
        *v.get_mut(0) = 1; // reuses a spare page: no growth
        *v.get_mut(PAGE_LEN) = 1;
        assert_eq!(v.state_bytes(), bytes_before, "pages recycled, not grown");
        assert_eq!(*v.get(1), 0, "recycled page was wiped");
    }

    #[test]
    fn try_for_each_touched_mut_visits_ascending_and_propagates_errors() {
        let mut v: PagedVec<u32> = PagedVec::new(2 * PAGE_LEN, 0);
        *v.get_mut(PAGE_LEN + 4) = 5;
        *v.get_mut(1) = 6;
        let mut seen = Vec::new();
        v.try_for_each_touched_mut(|i, x| {
            if *x != 0 {
                seen.push(i);
            }
            *x = 0;
            Ok::<(), ()>(())
        })
        .unwrap();
        assert_eq!(seen, vec![1, PAGE_LEN + 4]);
        assert!(v
            .try_for_each_touched_mut(|i, _| if i == 3 { Err("boom") } else { Ok(()) })
            .is_err());
    }

    #[test]
    fn arena_prepare_prefill_and_accounting() {
        let mut a = SimArena::new();
        a.prepare(3 * PAGE_LEN + 5, 4);
        assert_eq!(a.touched_channels(), 0);
        a.queues.get_mut(0).push_back(Packet {
            src: 0,
            dst: 1,
            path: Arc::from(vec![ChannelId(0)]),
            hop: 0,
            inject_cycle: 0,
            ready_at: 0,
            deadline: u64::MAX,
            retries: 0,
        });
        *a.busy_until.get_mut(3 * PAGE_LEN) = 1; // partial last page
        assert_eq!(a.touched_channels(), PAGE_LEN + 5);
        assert!(a.state_bytes() > 0);
        a.prefill_dense();
        assert_eq!(a.touched_channels(), 3 * PAGE_LEN + 5);
        a.prepare(PAGE_LEN, 4);
        assert_eq!(a.touched_channels(), 0, "prepare resets the working set");
        a.set_prefill_on_prepare(true);
        a.prepare(PAGE_LEN + 1, 4);
        assert_eq!(
            a.touched_channels(),
            PAGE_LEN + 1,
            "dense mode prefills on prepare"
        );
    }

    #[test]
    fn sparse_wait_cycle_matches_dense_semantics() {
        // 3 -> 5 -> 9 -> 3 cycle plus a tail 1 -> 3 and a dead end 7 -> 100.
        let mut waits = BTreeMap::new();
        waits.insert(3u32, ChannelId(5));
        waits.insert(5, ChannelId(9));
        waits.insert(9, ChannelId(3));
        waits.insert(1, ChannelId(3));
        waits.insert(7, ChannelId(100));
        let cycle = find_wait_cycle(&waits);
        assert_eq!(cycle, vec![ChannelId(3), ChannelId(5), ChannelId(9)]);
        assert!(find_wait_cycle(&BTreeMap::new()).is_empty());
        let mut acyclic = BTreeMap::new();
        acyclic.insert(0u32, ChannelId(1));
        assert!(find_wait_cycle(&acyclic).is_empty());
    }
}
