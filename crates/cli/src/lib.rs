//! # ftclos-cli — command-line interface to the ftclos library
//!
//! ```text
//! ftclos design <radix>                      largest fabrics buildable from a switch radix
//! ftclos table1                              regenerate the paper's Table I
//! ftclos build  <n> <m> <r> [--dot FILE]     build ftree(n+m, r), print its census
//! ftclos verify <n> <m> <r> [--router R]     complete Lemma 1 nonblocking audit
//! ftclos route  <n> <m> <r> [--router R] [--pattern P] [--seed S]
//! ftclos simulate <n> <m> <r> [--router R] [--pattern P] [--rate F]
//!                 [--cycles N] [--arbiter hol|islip:K] [--engine cycle|event]
//!                 [--fail-uplinks K] [--fail-at C] [--seed S] [--json]
//! ftclos blocking <n> <m> <r> [--router R] [--samples N] [--seed S]
//! ftclos faults <n> <m> <r> [--fail-tops K] [--fail-links K] [--seed S]
//!               [--samples N] [--max-k K]
//! ftclos churn  <n> <m> <r> [--links K] [--mtbf N] [--mttr N] [--cycles N]
//!               [--rate F] [--mode pinned|percycle|hysteresis:K]
//!               [--samples N] [--seed S] [--target F --max-m M]
//! ftclos flowsim <n> <m> <r> [--router R] [--pattern P] [--seed S] [--json]
//!                [--fail-tops K] [--fail-links K]
//! ftclos congestion <n> <m> <r> [--mode greedy|rounded|repaired] [--pattern P]
//!                 [--seed S] [--trials N] [--fail-tops K] [--fail-links K]
//!                 [--churn-links K --mtbf N --mttr N --churn-cycles N] [--json]
//! ftclos deadlock <n> <m> <r> [--router R|valley|all] [--fail-tops K]
//!                 [--fail-links K] [--seed S] [--churn-links K] [--inject]
//!                 [--json]
//! ftclos campaign <n> <m> <r> [--property P] [--mode random|exhaustive]
//!                 [--k K] [--waves N] [--shrink] [--checkpoint FILE]
//!                 [--resume] [--confirm] [--json]
//! ftclos stats <trace.json> [--folded]       summarize a `--trace` output
//! ```
//!
//! Routers: `yuan` (Theorem 3, needs `m >= n²`), `dmodk`, `smodk`,
//! `adaptive` (NONBLOCKINGADAPTIVE), `greedy`, `rearrangeable`
//! (centralized edge coloring, needs `m >= n`).
//! Patterns: `shift:<k>`, `random`, `transpose`, `bitrev`, `neighbor`,
//! `tornado`, `identity`.
//!
//! Every command accepts `--trace FILE`: the run is instrumented through an
//! [`ftclos_obs::Registry`] (span timers + counters threaded down into the
//! engine/flowsim/sim hot paths) and the resulting trace JSON is written to
//! FILE. `ftclos stats FILE` summarizes a trace back into text.
//!
//! Every command is a pure function from arguments to output text, so the
//! whole surface is unit-testable.

pub mod commands;
pub mod opts;

use ftclos_obs::{Recorder as _, Registry};

pub use opts::{CliError, Opts};

/// Dispatch a full argument vector (excluding `argv[0]`) to a command.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::Usage(USAGE.to_string()));
    };
    let rest = normalize_bare_flags(rest);
    let opts = Opts::parse(&rest)?;
    let reg = Registry::new();
    let out = dispatch(cmd, &opts, &reg)?;
    if let Some(path) = opts.flag("trace") {
        let trace = reg.snapshot().to_json(cmd, &rest.join(" "));
        std::fs::write(path, trace)
            .map_err(|e| CliError::Failed(format!("cannot write trace {path}: {e}")))?;
    }
    Ok(out)
}

/// Route one command to its implementation under a root span, so every
/// trace has a single `cmd.<name>` root whose children are the library
/// phases (`arena.build`, `engine.census`, `flowsim.waterfill`, ...).
fn dispatch(cmd: &str, opts: &Opts, reg: &Registry) -> Result<String, CliError> {
    match cmd {
        "design" => {
            let _s = reg.span("cmd.design");
            commands::design::run(opts, reg)
        }
        "table1" => {
            let _s = reg.span("cmd.table1");
            commands::table1::run(opts, reg)
        }
        "build" => {
            let _s = reg.span("cmd.build");
            commands::build::run(opts, reg)
        }
        "verify" => {
            let _s = reg.span("cmd.verify");
            commands::verify::run(opts, reg)
        }
        "route" => {
            let _s = reg.span("cmd.route");
            commands::route::run(opts, reg)
        }
        "simulate" => {
            let _s = reg.span("cmd.simulate");
            commands::simulate::run(opts, reg)
        }
        "blocking" => {
            let _s = reg.span("cmd.blocking");
            commands::blocking::run(opts, reg)
        }
        "faults" => {
            let _s = reg.span("cmd.faults");
            commands::faults::run(opts, reg)
        }
        "churn" => {
            let _s = reg.span("cmd.churn");
            commands::churn::run(opts, reg)
        }
        "deadlock" => {
            let _s = reg.span("cmd.deadlock");
            commands::deadlock::run(opts, reg)
        }
        "campaign" => {
            let _s = reg.span("cmd.campaign");
            commands::campaign::run(opts, reg)
        }
        "flowsim" => {
            let _s = reg.span("cmd.flowsim");
            commands::flowsim::run(opts, reg)
        }
        "congestion" => {
            let _s = reg.span("cmd.congestion");
            commands::congestion::run(opts, reg)
        }
        "stats" => commands::stats::run(opts, reg),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    }
}

/// Flags that are boolean switches: `--json` alone means `--json true`, so
/// the value-taking [`Opts::parse`] grammar stays unchanged for everything
/// else.
const BARE_FLAGS: &[&str] = &[
    "--json",
    "--folded",
    "--inject",
    "--shrink",
    "--resume",
    "--confirm",
];

fn normalize_bare_flags(args: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len() + 1);
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        out.push(a.clone());
        if BARE_FLAGS.contains(&a.as_str()) {
            let has_value = it.peek().is_some_and(|next| !next.starts_with("--"));
            if !has_value {
                out.push("true".to_string());
            }
        }
    }
    out
}

/// Top-level usage text.
pub const USAGE: &str = "\
ftclos — nonblocking folded-Clos networks (Yuan, IPDPS 2011)

USAGE:
  ftclos design <radix>
  ftclos table1
  ftclos build  <n> <m> <r> [--dot FILE]
  ftclos verify <n> <m> <r> [--router yuan|dmodk|smodk]
  ftclos route  <n> <m> <r> [--router R] [--pattern P] [--seed S]
  ftclos simulate <n> <m> <r> [--router R] [--pattern P] [--rate F]
                  [--cycles N] [--arbiter hol|islip:K] [--engine cycle|event]
                  [--fail-uplinks K] [--fail-at C] [--seed S] [--json]
  ftclos blocking <n> <m> <r> [--router R] [--samples N] [--seed S]
  ftclos faults <n> <m> <r> [--fail-tops K] [--fail-links K] [--seed S]
                [--samples N] [--max-k K]
  ftclos churn  <n> <m> <r> [--links K] [--mtbf N] [--mttr N] [--cycles N]
                [--rate F] [--mode pinned|percycle|hysteresis:K]
                [--samples N] [--seed S] [--target F --max-m M]
  ftclos flowsim <n> <m> <r> [--router R] [--pattern P] [--seed S] [--json]
                 [--fail-tops K] [--fail-links K]
  ftclos congestion <n> <m> <r> [--mode greedy|rounded|repaired] [--pattern P]
                  [--seed S] [--trials N] [--fail-tops K] [--fail-links K]
                  [--churn-links K --mtbf N --mttr N --churn-cycles N] [--json]
  ftclos deadlock <n> <m> <r> [--router yuan|dmodk|smodk|multipath|adaptive|valley|all]
                  [--fail-tops K] [--fail-links K] [--seed S]
                  [--churn-links K --mtbf N --mttr N --churn-cycles N]
                  [--inject] [--inject-cycles N] [--queue-capacity K] [--json]
  ftclos campaign <n> <m> <r> [--property routability|deterministic|nonblocking|deadlock]
                  [--mode random|exhaustive] [--k K] [--universe tops|links|mixed]
                  [--waves N] [--wave-size N] [--links K] [--switches K]
                  [--samples N] [--router yuan|dmodk|smodk|valley] [--seed S]
                  [--shrink] [--checkpoint FILE] [--resume] [--halt-after N]
                  [--confirm] [--confirm-cycles N] [--watchdog N]
                  [--queue-capacity K] [--json]
  ftclos stats <trace.json> [--folded]

Every command also accepts `--trace FILE` to write a span/counter trace
(JSON); summarize it with `ftclos stats`, or re-emit it as folded stacks
for flamegraph tooling with `ftclos stats FILE --folded`.

PATTERNS: shift:<k> random transpose bitrev neighbor tornado identity
ROUTERS:  yuan dmodk smodk adaptive greedy rearrangeable
          (flowsim also accepts: multipath)";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&argv("help")).unwrap().contains("USAGE"));
        assert!(matches!(run(&argv("frobnicate")), Err(CliError::Usage(_))));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn end_to_end_design() {
        let out = run(&argv("design 20")).unwrap();
        assert!(out.contains("80"), "20-port design yields 80 ports: {out}");
    }

    #[test]
    fn end_to_end_verify() {
        let out = run(&argv("verify 2 4 5")).unwrap();
        assert!(out.contains("NONBLOCKING"), "{out}");
        let out = run(&argv("verify 2 2 5 --router dmodk")).unwrap();
        assert!(out.contains("BLOCKING"), "{out}");
    }

    #[test]
    fn end_to_end_route_and_simulate() {
        let out = run(&argv("route 2 4 5 --pattern shift:3")).unwrap();
        assert!(out.contains("max channel load = 1"), "{out}");
        let out = run(&argv(
            "simulate 2 4 5 --pattern shift:3 --rate 0.8 --cycles 500",
        ))
        .unwrap();
        assert!(out.contains("accepted throughput"), "{out}");
    }

    #[test]
    fn end_to_end_faults() {
        let out = run(&argv("faults 2 4 5 --fail-tops 1 --samples 5 --max-k 0")).unwrap();
        assert!(out.contains("pairs routable"), "{out}");
        assert!(out.contains("masked adaptive"), "{out}");
    }

    #[test]
    fn end_to_end_churn() {
        let out = run(&argv(
            "churn 2 4 3 --links 1 --mtbf 200 --mttr 60 --cycles 500 --samples 8",
        ))
        .unwrap();
        assert!(out.contains("availability:"), "{out}");
        assert!(
            out.contains("time-to-reconverge") || out.contains("transition epoch"),
            "{out}"
        );
    }

    #[test]
    fn end_to_end_flowsim() {
        let out = run(&argv("flowsim 2 4 5 --pattern shift:3")).unwrap();
        assert!(out.contains("fluid-nonblocking"), "{out}");
        // Bare --json (no value) is normalized to a boolean switch.
        let out = run(&argv("flowsim 2 4 5 --pattern shift:3 --json")).unwrap();
        assert!(out.trim_start().starts_with('['), "{out}");
        assert!(out.contains("\"all_unit_rate\":true"), "{out}");
        // --json before another flag must not swallow it.
        let out = run(&argv("flowsim 2 4 5 --json --pattern shift:3")).unwrap();
        assert!(out.contains("\"pattern\":\"shift:3\""), "{out}");
    }

    #[test]
    fn end_to_end_trace_and_stats() {
        let path = std::env::temp_dir().join("ftclos_cli_trace_test.json");
        let spec = format!("verify 2 4 5 --trace {}", path.display());
        run(&argv(&spec)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"trace_version\": 1"), "{text}");
        assert!(text.contains("cmd.verify"), "{text}");
        assert!(text.contains("arena.build"), "{text}");

        let out = run(&argv(&format!("stats {}", path.display()))).unwrap();
        assert!(out.contains("cmd.verify"), "{out}");
        assert!(out.contains("span coverage"), "{out}");

        let folded = run(&argv(&format!("stats {} --folded", path.display()))).unwrap();
        assert!(folded.lines().all(|l| l.split_whitespace().count() == 2));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn end_to_end_blocking_and_table1() {
        let out = run(&argv("blocking 2 2 5 --router dmodk --samples 50")).unwrap();
        assert!(out.contains("blocking fraction"), "{out}");
        let out = run(&argv("table1")).unwrap();
        assert!(out.contains("42"), "{out}");
    }
}
