//! `ftclos stats <trace.json> [--folded]` — summarize a trace written by
//! `--trace`: span tree with self-time percentages, counters, gauges, and
//! the span-coverage figure E21 tracks. `--folded` re-emits the spans as
//! folded stacks (`path self_ns` per line) for flamegraph tooling.

use crate::opts::{CliError, Opts};
use ftclos_obs::json::Json;
use ftclos_obs::Registry;
use std::fmt::Write as _;

/// One span row reconstructed from the trace JSON.
struct SpanRow {
    path: String,
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

/// Run the command.
pub fn run(opts: &Opts, _rec: &Registry) -> Result<String, CliError> {
    let path = opts.pos_str(0, "trace.json")?;
    let folded: bool = opts.flag_or("folded", false)?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Failed(format!("cannot read {path}: {e}")))?;
    let doc = Json::parse(&text)
        .map_err(|e| CliError::Failed(format!("{path} is not valid trace JSON: {e}")))?;
    let spans = parse_spans(&doc, path)?;
    if folded {
        return Ok(render_folded(&spans));
    }
    Ok(render_summary(&doc, &spans))
}

fn parse_spans(doc: &Json, path: &str) -> Result<Vec<SpanRow>, CliError> {
    let missing = |field: &str| CliError::Failed(format!("{path}: missing `{field}` field"));
    let arr = doc
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or_else(|| missing("spans"))?;
    arr.iter()
        .map(|s| {
            Ok(SpanRow {
                path: s
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("spans[].path"))?
                    .to_string(),
                count: s.get("count").and_then(Json::as_u64).unwrap_or(0),
                total_ns: s.get("total_ns").and_then(Json::as_u64).unwrap_or(0),
                self_ns: s.get("self_ns").and_then(Json::as_u64).unwrap_or(0),
            })
        })
        .collect()
}

fn render_folded(spans: &[SpanRow]) -> String {
    let mut out = String::new();
    for s in spans {
        if s.self_ns > 0 {
            let _ = writeln!(out, "{} {}", s.path, s.self_ns);
        }
    }
    out
}

/// Nanoseconds as a human-scaled duration.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render_summary(doc: &Json, spans: &[SpanRow]) -> String {
    let mut out = String::new();
    let meta = doc.get("meta");
    let command = meta
        .and_then(|m| m.get("command"))
        .and_then(Json::as_str)
        .unwrap_or("?");
    let args = meta
        .and_then(|m| m.get("args"))
        .and_then(Json::as_str)
        .unwrap_or("");
    let wall_ns = doc.get("wall_ns").and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "trace of `{command}{}{args}` (wall {})",
        if args.is_empty() { "" } else { " " },
        fmt_ns(wall_ns)
    );
    let _ = writeln!(out);

    let width = spans.iter().map(|s| s.path.len()).max().unwrap_or(4).max(4);
    let _ = writeln!(
        out,
        "{:<width$} {:>8} {:>10} {:>10} {:>7}",
        "span", "count", "total", "self", "self%"
    );
    let denom = wall_ns.max(1) as f64;
    for s in spans {
        let _ = writeln!(
            out,
            "{:<width$} {:>8} {:>10} {:>10} {:>6.1}%",
            s.path,
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(s.self_ns),
            100.0 * s.self_ns as f64 / denom
        );
    }
    // Roots are paths without a `;`; their inclusive time over the wall
    // clock is the "spans cover X% of wall time" acceptance metric.
    let root_ns: u64 = spans
        .iter()
        .filter(|s| !s.path.contains(';'))
        .map(|s| s.total_ns)
        .sum();
    let _ = writeln!(
        out,
        "span coverage: {:.1}% of wall time inside root spans",
        100.0 * root_ns as f64 / denom
    );

    for section in ["counters", "gauges"] {
        if let Some(Json::Obj(entries)) = doc.get(section) {
            if !entries.is_empty() {
                let _ = writeln!(out, "{section}:");
                for (k, v) in entries {
                    let _ = writeln!(out, "  {k} = {}", v.write());
                }
            }
        }
    }
    if let Some(epochs) = doc.get("epochs").and_then(Json::as_arr) {
        if !epochs.is_empty() {
            let _ = writeln!(out, "epochs: {}", epochs.len());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclos_obs::Recorder as _;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    fn write_sample_trace(name: &str) -> std::path::PathBuf {
        let reg = Registry::new();
        {
            let _root = reg.span("cmd.demo");
            let _child = reg.span("demo.work");
            reg.add("demo.items", 7);
        }
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, reg.snapshot().to_json("demo", "1 2 3")).unwrap();
        path
    }

    #[test]
    fn summarizes_a_trace() {
        let path = write_sample_trace("ftclos_stats_test.json");
        let out = run(&argv(&path.display().to_string()), &Registry::new()).unwrap();
        assert!(out.contains("trace of `demo 1 2 3`"), "{out}");
        assert!(out.contains("cmd.demo"), "{out}");
        assert!(out.contains("cmd.demo;demo.work"), "{out}");
        assert!(out.contains("span coverage"), "{out}");
        assert!(out.contains("demo.items = 7"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn folded_output_is_two_columns() {
        let path = write_sample_trace("ftclos_stats_folded_test.json");
        let out = run(
            &argv(&format!("{} --folded true", path.display())),
            &Registry::new(),
        )
        .unwrap();
        for line in out.lines() {
            let mut parts = line.split_whitespace();
            let stack = parts.next().unwrap();
            let ns: u64 = parts.next().unwrap().parse().unwrap();
            assert!(parts.next().is_none());
            assert!(stack.starts_with("cmd.demo"));
            assert!(ns > 0);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bad_inputs_fail_cleanly() {
        assert!(run(&argv("/nonexistent/trace.json"), &Registry::new()).is_err());
        let junk = std::env::temp_dir().join("ftclos_stats_junk.json");
        std::fs::write(&junk, "not json").unwrap();
        assert!(run(&argv(&junk.display().to_string()), &Registry::new()).is_err());
        let _ = std::fs::remove_file(junk);
    }
}
