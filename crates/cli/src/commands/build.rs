//! `ftclos build <n> <m> <r> [--dot FILE]` — construct and describe a fabric.

use super::common::build_ftree;
use crate::opts::{CliError, Opts};
use ftclos_obs::Registry;
use ftclos_topo::dot::{to_dot, DotOptions};
use ftclos_topo::{diameter, StructureReport};
use std::fmt::Write as _;

/// Run the command.
pub fn run(opts: &Opts, _rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let rep = StructureReport::new(ft.topology());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ftree({}+{}, {}): {} leaves, {} switches, {} cables",
        ft.n(),
        ft.m(),
        ft.r(),
        rep.leaves,
        rep.total_switches(),
        rep.cables
    );
    let _ = writeln!(
        out,
        "  bottom radix {} | top radix {} | diameter {} hops",
        ft.n() + ft.m(),
        ft.r(),
        diameter(ft.topology()).map_or("inf".into(), |d| d.to_string())
    );
    let n2 = ft.n() * ft.n();
    let _ = writeln!(
        out,
        "  nonblocking condition (Theorem 2): m >= n^2 = {n2} -> {}",
        if ft.m() >= n2 {
            "SATISFIED (use --router yuan)"
        } else {
            "NOT satisfied (every deterministic routing blocks)"
        }
    );
    if let Some(path) = opts.flag("dot") {
        let dot = to_dot(ft.topology(), &DotOptions::default());
        std::fs::write(path, dot)
            .map_err(|e| CliError::Failed(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "  DOT written to {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn describes_fabric() {
        let out = run(&argv("2 4 5"), &Registry::new()).unwrap();
        assert!(out.contains("10 leaves"));
        assert!(out.contains("SATISFIED"));
        let out = run(&argv("2 3 5"), &Registry::new()).unwrap();
        assert!(out.contains("NOT satisfied"));
    }

    #[test]
    fn writes_dot() {
        let dir = std::env::temp_dir().join("ftclos_cli_test.dot");
        let spec = format!("2 2 3 --dot {}", dir.display());
        let out = run(&argv(&spec), &Registry::new()).unwrap();
        assert!(out.contains("DOT written"));
        let content = std::fs::read_to_string(&dir).unwrap();
        assert!(content.starts_with("graph"));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn rejects_zero() {
        assert!(run(&argv("0 1 1"), &Registry::new()).is_err());
    }
}
