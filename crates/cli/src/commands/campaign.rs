//! `ftclos campaign <n> <m> <r> [--property routability|deterministic|
//! nonblocking|deadlock] [--mode random|exhaustive] [--k K]
//! [--universe tops|links|mixed] [--waves N] [--wave-size N] [--links K]
//! [--switches K] [--samples N] [--router R] [--seed S] [--shrink]
//! [--checkpoint FILE] [--resume] [--halt-after N] [--confirm]
//! [--confirm-cycles N] [--watchdog N] [--queue-capacity K] [--json]`
//! — adversarial fault campaigns against a fabric property.
//!
//! * `--mode exhaustive` enumerates every fault set of size ≤ `--k` from
//!   the chosen universe and prints a k-fault-tolerance certificate or the
//!   lexicographically-first killer.
//! * `--mode random` (default) fires `--waves` seeded waves of
//!   `--wave-size` fault sets, each failing `--links` random cables and
//!   `--switches` random top switches; `--shrink` reduces every killer to
//!   a 1-minimal counterexample and the report ends with the per-component
//!   criticality ranking.
//! * `--checkpoint FILE` writes campaign state after every wave;
//!   `--resume` (with the same campaign arguments) continues from it and
//!   produces the identical final report. `--halt-after N` stops after N
//!   waves (testing knob for the checkpoint path).
//! * `--confirm` (deadlock property only) closes the loop dynamically: the
//!   minimal killer's masked CDG witness cycle is attributed to pinned
//!   routes, injected into the packet simulator under a stall watchdog,
//!   and the resulting [`ftclos_sim::SimError::Stalled`] strand graph —
//!   which packets hold which channel waiting on which — is printed as the
//!   dynamic confirmation of the static cycle.
//!
//! The final report never mentions checkpointing, so an interrupted-and-
//! resumed campaign is byte-identical to an uninterrupted one.

use super::common::build_ftree;
use super::deadlock::witness_routes;
use crate::opts::{CliError, Opts};
use ftclos_core::campaign::DeadlockFreedom;
use ftclos_core::campaign::{
    cable_universe, certify_exhaustive_with, run_randomized_with, top_switch_universe,
    AdaptiveRoutability, ArenaRoutability, CampaignConfig, CampaignError, CampaignProperty,
    CampaignReport, Certificate, FaultElement, FaultVector, NonblockingMargin,
};
use ftclos_core::cdg::{cdg_of_masked_router_with, ValleyRouter};
use ftclos_obs::{Recorder as _, Registry};
use ftclos_routing::{DModK, SModK, SinglePathRouter, YuanDeterministic};
use ftclos_sim::{run_pinned_injection_watchdog_recorded, SimError, StallReport};
use ftclos_topo::{FaultyView, Ftree};
use std::fmt::Write as _;

/// Properties a campaign can attack.
const PROPERTIES: &[&str] = &["routability", "deterministic", "nonblocking", "deadlock"];

/// Routers the `deterministic` and `deadlock` properties accept.
const CAMPAIGN_ROUTERS: &[&str] = &["yuan", "dmodk", "smodk", "valley"];

/// One owned router instance, so property structs can borrow it.
enum Router<'a> {
    Yuan(YuanDeterministic<'a>),
    DModK(DModK<'a>),
    SModK(SModK<'a>),
    Valley(ValleyRouter<'a>),
}

impl Router<'_> {
    fn as_dyn(&self) -> &(dyn SinglePathRouter + Sync) {
        match self {
            Router::Yuan(r) => r,
            Router::DModK(r) => r,
            Router::SModK(r) => r,
            Router::Valley(r) => r,
        }
    }
}

fn make_router<'a>(ft: &'a Ftree, name: &str) -> Result<Router<'a>, CliError> {
    match name {
        "yuan" => Ok(Router::Yuan(
            YuanDeterministic::new(ft).map_err(|e| CliError::Failed(e.to_string()))?,
        )),
        "dmodk" => Ok(Router::DModK(DModK::new(ft))),
        "smodk" => Ok(Router::SModK(SModK::new(ft))),
        "valley" => Ok(Router::Valley(ValleyRouter::new(ft))),
        other => Err(CliError::Usage(format!(
            "unknown router `{other}` (one of {CAMPAIGN_ROUTERS:?})"
        ))),
    }
}

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let property_name: String = opts.flag_or("property", "routability".to_string())?;
    let mode: String = opts.flag_or("mode", "random".to_string())?;
    let k: usize = opts.flag_or("k", 2)?;
    let universe: String = opts.flag_or("universe", "tops".to_string())?;
    let waves: usize = opts.flag_or("waves", 16)?;
    let wave_size: usize = opts.flag_or("wave-size", 16)?;
    let links_per_set: usize = opts.flag_or("links", 2)?;
    let switches_per_set: usize = opts.flag_or("switches", 1)?;
    let samples: usize = opts.flag_or("samples", 20)?;
    let router_name: String = opts.flag_or("router", "dmodk".to_string())?;
    let seed: u64 = opts.flag_or("seed", 0)?;
    let do_shrink: bool = opts.flag_or("shrink", false)?;
    let json: bool = opts.flag_or("json", false)?;
    let checkpoint: Option<String> = opts.flag("checkpoint").map(str::to_string);
    let resume: bool = opts.flag_or("resume", false)?;
    let halt_after: usize = opts.flag_or("halt-after", 0)?;
    let confirm: bool = opts.flag_or("confirm", false)?;
    let confirm_cycles: u64 = opts.flag_or("confirm-cycles", 200)?;
    let watchdog: u64 = opts.flag_or("watchdog", 64)?;
    let queue_capacity: usize = opts.flag_or("queue-capacity", 2)?;

    if !PROPERTIES.contains(&property_name.as_str()) {
        return Err(CliError::Usage(format!(
            "unknown property `{property_name}` (one of {PROPERTIES:?})"
        )));
    }
    if confirm && property_name != "deadlock" {
        return Err(CliError::Usage(
            "--confirm needs --property deadlock (it replays a CDG witness cycle)".to_string(),
        ));
    }

    // Own the router + property for the duration of the run; `property`
    // is the trait object every campaign mode attacks.
    let topo = ft.topology();
    let router = make_router(&ft, &router_name)?;
    let routability;
    let deterministic;
    let nonblocking;
    let deadlock;
    let property: &dyn CampaignProperty = match property_name.as_str() {
        "routability" => {
            routability = AdaptiveRoutability::new(&ft);
            &routability
        }
        "deterministic" => {
            deterministic = ArenaRoutability::new(topo, router.as_dyn())
                .map_err(|e| CliError::Failed(e.to_string()))?;
            &deterministic
        }
        "nonblocking" => {
            nonblocking = NonblockingMargin::new(&ft, samples, seed);
            &nonblocking
        }
        _ => {
            deadlock = DeadlockFreedom::new(topo, router.as_dyn());
            &deadlock
        }
    };
    let baseline = property.judge(&FaultVector::default());

    match mode.as_str() {
        "exhaustive" => {
            let elems = exhaustive_universe(&ft, &universe)?;
            let cert = certify_exhaustive_with(property, &elems, k, rec);
            rec.gauge("campaign.certified", u64::from(cert.certified()));
            if json {
                Ok(certificate_json(&ft, &cert))
            } else {
                Ok(certificate_text(&ft, &cert))
            }
        }
        "random" => {
            let links = cable_universe(topo);
            let switches = top_switch_universe(topo);
            let cfg = CampaignConfig {
                seed,
                waves,
                wave_size,
                links_per_set,
                switches_per_set,
                shrink: do_shrink,
            };
            let prior = if resume {
                let Some(path) = &checkpoint else {
                    return Err(CliError::Usage(
                        "--resume needs --checkpoint FILE to read from".to_string(),
                    ));
                };
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::Failed(format!("cannot read checkpoint {path}: {e}")))?;
                Some(
                    CampaignReport::parse_checkpoint(&text)
                        .map_err(|e| CliError::Failed(e.to_string()))?,
                )
            } else {
                None
            };
            let mut on_wave = |state: &CampaignReport| {
                if let Some(path) = &checkpoint {
                    std::fs::write(path, state.to_checkpoint_text())
                        .map_err(|e| CampaignError::Io(format!("writing {path}: {e}")))?;
                }
                Ok(halt_after == 0 || state.waves_done < halt_after)
            };
            let report = run_randomized_with(
                property,
                &links,
                &switches,
                &cfg,
                prior.as_ref(),
                rec,
                &mut on_wave,
            )
            .map_err(|e| CliError::Failed(e.to_string()))?;
            let confirmation = if confirm {
                Some(run_confirm(
                    &ft,
                    &router_name,
                    router.as_dyn(),
                    &baseline,
                    &report,
                    confirm_cycles,
                    watchdog,
                    queue_capacity,
                    seed,
                    rec,
                )?)
            } else {
                None
            };
            if json {
                Ok(report_json(&ft, &baseline, &report, confirmation.as_ref()))
            } else {
                Ok(report_text(&ft, &baseline, &report, confirmation.as_ref()))
            }
        }
        other => Err(CliError::Usage(format!(
            "unknown mode `{other}` (random or exhaustive)"
        ))),
    }
}

/// The element universe for exhaustive certification.
fn exhaustive_universe(ft: &Ftree, universe: &str) -> Result<Vec<FaultElement>, CliError> {
    let topo = ft.topology();
    let tops = || {
        top_switch_universe(topo)
            .into_iter()
            .map(FaultElement::Switch)
    };
    let links = || cable_universe(topo).into_iter().map(FaultElement::Link);
    match universe {
        "tops" => Ok(tops().collect()),
        "links" => Ok(links().collect()),
        "mixed" => Ok(links().chain(tops()).collect()),
        other => Err(CliError::Usage(format!(
            "unknown universe `{other}` (tops, links, or mixed)"
        ))),
    }
}

/// The target fault set and stall outcome of a `--confirm` replay.
struct Confirmation {
    target: FaultVector,
    witness_len: usize,
    routes: usize,
    outcome: Result<StallReport, String>,
}

/// Dynamically confirm a statically-cyclic minimal killer: rebuild the
/// masked CDG under the killer, attribute its witness cycle to pinned
/// routes, and drive them into the simulator under the stall watchdog.
#[allow(clippy::too_many_arguments)]
fn run_confirm(
    ft: &Ftree,
    router_name: &str,
    router: &(dyn SinglePathRouter + Sync),
    baseline: &ftclos_core::campaign::Judgement,
    report: &CampaignReport,
    cycles: u64,
    watchdog: u64,
    queue_capacity: usize,
    seed: u64,
    rec: &Registry,
) -> Result<Confirmation, CliError> {
    // The confirmation target: the first (deterministic) minimal killer,
    // or the empty set when the pristine baseline is already cyclic.
    let target = if !baseline.holds {
        FaultVector::default()
    } else {
        match report.killers.first() {
            Some(k) => k.minimal.clone().unwrap_or_else(|| k.faults.clone()),
            None => {
                return Err(CliError::Failed(
                    "--confirm found nothing to replay: baseline holds and the campaign \
                     produced no killer"
                        .to_string(),
                ))
            }
        }
    };
    let _s = rec.span("campaign.confirm");
    let topo = ft.topology();
    let fs = target.to_fault_set(topo);
    let view = FaultyView::new(topo, &fs);
    let analysis = cdg_of_masked_router_with(router, &view, rec).check();
    let Some(witness) = analysis.verdict.witness() else {
        return Err(CliError::Failed(format!(
            "--confirm target {target} is not statically cyclic for router {router_name}"
        )));
    };
    let view_opt = (!target.is_empty()).then_some(&view);
    let routes = witness_routes(ft, router_name, view_opt, witness);
    if routes.is_empty() {
        return Err(CliError::Failed(
            "witness attribution found no realizing routes".to_string(),
        ));
    }
    let outcome = match run_pinned_injection_watchdog_recorded(
        topo,
        &routes,
        cycles,
        queue_capacity,
        watchdog,
        seed,
        rec,
    ) {
        Err(SimError::Stalled(stall)) => Ok(stall),
        Err(e) => Err(format!("simulation failed: {e}")),
        Ok(run) => Err(format!(
            "no stall within {cycles} cycles ({} delivered of {})",
            run.stats.delivered_total, run.stats.injected_total
        )),
    };
    Ok(Confirmation {
        target,
        witness_len: witness.len(),
        routes: routes.len(),
        outcome,
    })
}

fn fabric_line(ft: &Ftree) -> String {
    format!("ftree({}+{}, {})", ft.n(), ft.m(), ft.r())
}

fn certificate_text(ft: &Ftree, cert: &Certificate) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault campaign on {}: property {}",
        fabric_line(ft),
        cert.property
    );
    let _ = writeln!(
        out,
        "mode: exhaustive, k = {} over a {}-element universe ({} fault sets)",
        cert.k, cert.universe_size, cert.sets_total
    );
    match &cert.killer {
        None => {
            let _ = writeln!(
                out,
                "CERTIFIED: tolerant to every fault set of size <= {}",
                cert.tolerant_up_to
            );
        }
        Some(killer) if killer.faults.is_empty() => {
            let _ = writeln!(out, "BASELINE VIOLATED: {}", killer.detail);
        }
        Some(killer) => {
            let _ = writeln!(
                out,
                "KILLER at size {}: {} — {}",
                killer.faults.len(),
                killer.faults,
                killer.detail
            );
            let _ = writeln!(
                out,
                "tolerant to every fault set of size <= {}",
                cert.tolerant_up_to
            );
        }
    }
    out
}

fn certificate_json(ft: &Ftree, cert: &Certificate) -> String {
    let killer = match &cert.killer {
        None => "null".to_string(),
        Some(k) => format!(
            "{{\"faults\":\"{}\",\"size\":{},\"detail\":\"{}\"}}",
            k.faults,
            k.faults.len(),
            escape(&k.detail)
        ),
    };
    format!(
        "{{\"fabric\":{{\"n\":{},\"m\":{},\"r\":{}}},\"property\":\"{}\",\
         \"mode\":\"exhaustive\",\"k\":{},\"universe_size\":{},\"sets_total\":{},\
         \"certified\":{},\"tolerant_up_to\":{},\"killer\":{}}}",
        ft.n(),
        ft.m(),
        ft.r(),
        cert.property,
        cert.k,
        cert.universe_size,
        cert.sets_total,
        cert.certified(),
        cert.tolerant_up_to,
        killer
    )
}

/// Killers listed in full up to this many lines; the rest is summarized.
const MAX_KILLER_LINES: usize = 16;

fn report_text(
    ft: &Ftree,
    baseline: &ftclos_core::campaign::Judgement,
    report: &CampaignReport,
    confirmation: Option<&Confirmation>,
) -> String {
    let cfg = &report.config;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault campaign on {}: property {}",
        fabric_line(ft),
        report.property
    );
    let _ = writeln!(
        out,
        "baseline: {} — {}",
        if baseline.holds { "holds" } else { "VIOLATED" },
        baseline.detail
    );
    let _ = writeln!(
        out,
        "mode: random, {} wave(s) x {} set(s) ({} link + {} switch faults per set), seed {}",
        report.waves_done, cfg.wave_size, cfg.links_per_set, cfg.switches_per_set, cfg.seed
    );
    let _ = writeln!(out, "property evaluations: {}", report.sets_evaluated);
    let drawn = report.waves_done * cfg.wave_size;
    let _ = writeln!(
        out,
        "killers: {} of {} drawn set(s)",
        report.killers.len(),
        drawn
    );
    for k in report.killers.iter().take(MAX_KILLER_LINES) {
        let _ = writeln!(
            out,
            "  wave {} set {}: {} — {}",
            k.wave, k.index, k.faults, k.detail
        );
        if let Some(minimal) = &k.minimal {
            let _ = writeln!(out, "    minimal: {} ({} eval(s))", minimal, k.shrink_evals);
        }
    }
    if report.killers.len() > MAX_KILLER_LINES {
        let _ = writeln!(
            out,
            "  ... and {} more",
            report.killers.len() - MAX_KILLER_LINES
        );
    }
    if !report.killers.is_empty() {
        let crit = report.criticality();
        let _ = writeln!(
            out,
            "criticality ({} distinct minimal killer(s)):",
            crit.minimal_killers
        );
        for (c, count) in &crit.links {
            let _ = writeln!(out, "  link   L{:<6} x {count}", c.0);
        }
        for (n, count) in &crit.switches {
            let _ = writeln!(out, "  switch S{:<6} x {count}", n.0);
        }
    }
    if let Some(c) = confirmation {
        let _ = writeln!(
            out,
            "confirm: killer {} -> {}-channel witness cycle -> {} pinned route(s)",
            c.target, c.witness_len, c.routes
        );
        match &c.outcome {
            Ok(stall) => {
                let _ = writeln!(
                    out,
                    "  STALLED at cycle {}: {} in flight, {} strand(s), {} stranded packet(s)",
                    stall.cycle,
                    stall.in_flight,
                    stall.strands.len(),
                    stall.stranded_packets()
                );
                let cycle: Vec<String> = stall
                    .wait_cycle
                    .iter()
                    .map(|c| format!("L{}", c.0))
                    .collect();
                let _ = writeln!(
                    out,
                    "  wait-for cycle: {}",
                    if cycle.is_empty() {
                        "none (acyclic stall)".to_string()
                    } else {
                        cycle.join(" -> ")
                    }
                );
                for s in &stall.strands {
                    let _ = writeln!(
                        out,
                        "    packet {}->{} holds {} waits for L{} ({} queued)",
                        s.src,
                        s.dst,
                        match s.holds {
                            Some(c) => format!("L{}", c.0),
                            None => "injection queue".to_string(),
                        },
                        s.waits_for.0,
                        s.queued
                    );
                }
            }
            Err(msg) => {
                let _ = writeln!(out, "  NOT CONFIRMED: {msg}");
            }
        }
    }
    out
}

fn report_json(
    ft: &Ftree,
    baseline: &ftclos_core::campaign::Judgement,
    report: &CampaignReport,
    confirmation: Option<&Confirmation>,
) -> String {
    let cfg = &report.config;
    let killers: Vec<String> = report
        .killers
        .iter()
        .map(|k| {
            let minimal = match &k.minimal {
                Some(fv) => format!("\"{fv}\""),
                None => "null".to_string(),
            };
            format!(
                "{{\"wave\":{},\"index\":{},\"faults\":\"{}\",\"detail\":\"{}\",\
                 \"minimal\":{},\"shrink_evals\":{}}}",
                k.wave,
                k.index,
                k.faults,
                escape(&k.detail),
                minimal,
                k.shrink_evals
            )
        })
        .collect();
    let crit = report.criticality();
    let crit_links: Vec<String> = crit
        .links
        .iter()
        .map(|(c, n)| format!("{{\"link\":{},\"count\":{n}}}", c.0))
        .collect();
    let crit_switches: Vec<String> = crit
        .switches
        .iter()
        .map(|(s, n)| format!("{{\"switch\":{},\"count\":{n}}}", s.0))
        .collect();
    let confirm_json = match confirmation {
        None => "null".to_string(),
        Some(c) => {
            let outcome = match &c.outcome {
                Ok(stall) => {
                    let cycle: Vec<String> =
                        stall.wait_cycle.iter().map(|c| c.0.to_string()).collect();
                    let strands: Vec<String> = stall
                        .strands
                        .iter()
                        .map(|s| {
                            format!(
                                "{{\"src\":{},\"dst\":{},\"holds\":{},\"waits_for\":{},\
                                 \"queued\":{}}}",
                                s.src,
                                s.dst,
                                match s.holds {
                                    Some(c) => c.0.to_string(),
                                    None => "null".to_string(),
                                },
                                s.waits_for.0,
                                s.queued
                            )
                        })
                        .collect();
                    format!(
                        "{{\"stalled\":true,\"cycle\":{},\"in_flight\":{},\
                         \"stranded_packets\":{},\"wait_cycle\":[{}],\"strands\":[{}]}}",
                        stall.cycle,
                        stall.in_flight,
                        stall.stranded_packets(),
                        cycle.join(","),
                        strands.join(",")
                    )
                }
                Err(msg) => format!("{{\"stalled\":false,\"reason\":\"{}\"}}", escape(msg)),
            };
            format!(
                "{{\"target\":\"{}\",\"witness_len\":{},\"routes\":{},\"outcome\":{}}}",
                c.target, c.witness_len, c.routes, outcome
            )
        }
    };
    format!(
        "{{\"fabric\":{{\"n\":{},\"m\":{},\"r\":{}}},\"property\":\"{}\",\"mode\":\"random\",\
         \"baseline_holds\":{},\"baseline_detail\":\"{}\",\"seed\":{},\"waves\":{},\
         \"wave_size\":{},\"links_per_set\":{},\"switches_per_set\":{},\"shrink\":{},\
         \"sets_evaluated\":{},\"killers\":[{}],\"criticality\":{{\"minimal_killers\":{},\
         \"links\":[{}],\"switches\":[{}]}},\"confirm\":{}}}",
        ft.n(),
        ft.m(),
        ft.r(),
        report.property,
        baseline.holds,
        escape(&baseline.detail),
        cfg.seed,
        report.waves_done,
        cfg.wave_size,
        cfg.links_per_set,
        cfg.switches_per_set,
        cfg.shrink,
        report.sets_evaluated,
        killers.join(","),
        crit.minimal_killers,
        crit_links.join(","),
        crit_switches.join(","),
        confirm_json
    )
}

/// Escape a detail string for embedding in hand-rolled JSON.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn exhaustive_certifies_top_tolerance() {
        let reg = Registry::new();
        let out = run(&argv("2 4 5 --mode exhaustive --k 2 --universe tops"), &reg).unwrap();
        assert!(out.contains("CERTIFIED"), "{out}");
        assert!(out.contains("11 fault sets"), "{out}"); // 1 + 4 + 6
        let snap = reg.snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "campaign.certify"));
    }

    #[test]
    fn exhaustive_finds_link_killer() {
        let out = run(
            &argv("2 4 5 --mode exhaustive --k 1 --universe links"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("KILLER at size 1"), "{out}");
        assert!(out.contains("host 0 severed"), "{out}");
    }

    #[test]
    fn random_campaign_shrinks_and_ranks() {
        let reg = Registry::new();
        let out = run(
            &argv("2 4 5 --waves 6 --wave-size 8 --links 2 --switches 1 --seed 7 --shrink true"),
            &reg,
        )
        .unwrap();
        assert!(out.contains("baseline: holds"), "{out}");
        assert!(out.contains("criticality"), "{out}");
        assert!(out.contains("minimal:"), "{out}");
        let snap = reg.snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "campaign.wave"));
        assert!(snap.spans.iter().any(|s| s.path == "campaign.shrink"));
    }

    #[test]
    fn confirm_replays_valley_wedge_as_stall() {
        let out = run(
            &argv(
                "1 1 4 --property deadlock --router valley --waves 1 --wave-size 2 \
                 --links 1 --switches 0 --shrink true --confirm true",
            ),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("baseline: VIOLATED"), "{out}");
        assert!(out.contains("STALLED at cycle"), "{out}");
        assert!(out.contains("wait-for cycle:"), "{out}");
        assert!(out.contains("holds L"), "{out}");
    }

    #[test]
    fn confirm_requires_deadlock_property() {
        assert!(run(&argv("2 4 5 --confirm true"), &Registry::new()).is_err());
        // And errors out when there is nothing cyclic to replay.
        assert!(run(
            &argv(
                "2 4 5 --property deadlock --router dmodk --waves 1 --wave-size 2 --confirm true"
            ),
            &Registry::new(),
        )
        .is_err());
    }

    #[test]
    fn checkpoint_halt_and_resume_match_uninterrupted() {
        let dir = std::env::temp_dir();
        let ckpt = dir.join("ftclos_campaign_cmd_test.ckpt");
        let ckpt = ckpt.to_str().unwrap();
        let _ = std::fs::remove_file(ckpt);
        let base = "2 4 5 --waves 4 --wave-size 6 --links 2 --switches 1 --seed 11 --shrink true";
        let full = run(&argv(base), &Registry::new()).unwrap();
        let halted = run(
            &argv(&format!("{base} --checkpoint {ckpt} --halt-after 2")),
            &Registry::new(),
        )
        .unwrap();
        assert_ne!(halted, full);
        let resumed = run(
            &argv(&format!("{base} --checkpoint {ckpt} --resume true")),
            &Registry::new(),
        )
        .unwrap();
        assert_eq!(resumed, full, "resume must reproduce the full report");
        let _ = std::fs::remove_file(ckpt);
    }

    #[test]
    fn json_shapes() {
        let out = run(
            &argv("2 4 5 --mode exhaustive --k 1 --universe tops --json true"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.starts_with('{'), "{out}");
        assert!(out.contains("\"certified\":true"), "{out}");
        let out = run(
            &argv("2 4 5 --waves 2 --wave-size 4 --seed 7 --shrink true --json true"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("\"criticality\""), "{out}");
        assert!(out.contains("\"baseline_holds\":true"), "{out}");
    }

    #[test]
    fn rejects_bad_arguments() {
        let reg = Registry::new();
        assert!(run(&argv("2 4 5 --property bogus"), &reg).is_err());
        assert!(run(&argv("2 4 5 --mode bogus"), &reg).is_err());
        assert!(run(&argv("2 4 5 --mode exhaustive --universe bogus"), &reg).is_err());
        assert!(run(&argv("2 4 5 --router bogus --property deterministic"), &reg).is_err());
        assert!(run(&argv("2 4 5 --resume true"), &reg).is_err());
    }

    #[test]
    fn nonblocking_property_kills_on_no_spare_fabric() {
        // ftree(2+4, 5) has m = n² (zero spares): one dead top must break
        // the nonblocking sweep while routability survives it.
        let out = run(
            &argv(
                "2 4 5 --property nonblocking --mode exhaustive --k 1 --universe tops --samples 10",
            ),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("KILLER at size 1"), "{out}");
    }
}
