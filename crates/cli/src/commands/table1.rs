//! `ftclos table1` — regenerate the paper's Table I.

use crate::opts::{CliError, Opts};
use ftclos_analysis::TextTable;
use ftclos_core::design;
use ftclos_obs::Registry;

/// Run the command.
pub fn run(_opts: &Opts, _rec: &Registry) -> Result<String, CliError> {
    let rows = design::table_one(&[20, 30, 42]);
    let mut table = TextTable::new([
        "radix",
        "NB switches",
        "NB ports",
        "FT(N,2) switches",
        "FT(N,2) ports",
    ]);
    for r in &rows {
        table.row([
            r.radix.to_string(),
            r.nonblocking.switches.to_string(),
            r.nonblocking.ports.to_string(),
            r.rearrangeable.switches.to_string(),
            r.rearrangeable.ports.to_string(),
        ]);
    }
    Ok(format!(
        "Table I — nonblocking ftree(n+n², n+n²) vs FT(N, 2):\n{}",
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_present() {
        let out = run(&Opts::default(), &Registry::new()).unwrap();
        for v in ["20", "30", "42", "80", "150", "252"] {
            assert!(out.contains(v), "missing {v} in {out}");
        }
    }
}
