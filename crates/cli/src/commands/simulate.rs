//! `ftclos simulate <n> <m> <r> [--router R] [--pattern P] [--rate F]
//! [--cycles N] [--arbiter hol|islip:K] [--engine cycle|event] [--seed S]
//! [--fail-uplinks K] [--fail-at C] [--json]` — packet-level run.
//!
//! `--engine event` runs the same workload on the event-driven core
//! (`ftclos-evsim`) instead of the cycle-level sweep; the two engines are
//! exact-replay equivalent, so the choice only affects speed at scale.
//! `--fail-uplinks K` kills the links through the first `K` uplinks of
//! edge switch 0 at cycle `--fail-at` (default: half the warmed-up run).

use super::common::{build_ftree, make_pattern, route_named};
use crate::opts::{CliError, Opts};
use ftclos_evsim::EventSimulator;
use ftclos_obs::Registry;
use ftclos_routing::{DModK, SModK, YuanDeterministic};
use ftclos_sim::{Arbiter, FaultSchedule, Policy, SimConfig, SimStats, Simulator, Workload};
use ftclos_topo::Ftree;
use std::fmt::Write as _;

fn parse_arbiter(spec: &str) -> Result<Arbiter, CliError> {
    if spec == "hol" {
        return Ok(Arbiter::HolFifo);
    }
    if let Some(k) = spec.strip_prefix("islip:") {
        let iterations: u8 = k
            .parse()
            .map_err(|_| CliError::Usage(format!("islip wants an iteration count, got `{k}`")))?;
        return Ok(Arbiter::Voq { iterations });
    }
    if spec == "islip" {
        return Ok(Arbiter::Voq { iterations: 1 });
    }
    Err(CliError::Usage(format!(
        "unknown arbiter `{spec}` (hol | islip | islip:<k>)"
    )))
}

/// Which simulator core executes the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Engine {
    /// Cycle-level sweep (`ftclos-sim`) — the oracle.
    Cycle,
    /// Event-driven active-set engine (`ftclos-evsim`).
    Event,
}

fn parse_engine(spec: &str) -> Result<Engine, CliError> {
    match spec {
        "cycle" => Ok(Engine::Cycle),
        "event" => Ok(Engine::Event),
        other => Err(CliError::Usage(format!(
            "unknown engine `{other}` (cycle | event)"
        ))),
    }
}

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let router = opts.flag("router").unwrap_or("yuan");
    let seed: u64 = opts.flag_or("seed", 0)?;
    let rate: f64 = opts.flag_or("rate", 1.0)?;
    let cycles: u64 = opts.flag_or("cycles", 2_000)?;
    let arbiter = parse_arbiter(opts.flag("arbiter").unwrap_or("hol"))?;
    let engine = parse_engine(opts.flag("engine").unwrap_or("cycle"))?;
    let json: bool = opts.flag_or("json", false)?;
    let fail_uplinks: usize = opts.flag_or("fail-uplinks", 0)?;
    let fail_at: u64 = opts.flag_or("fail-at", cycles / 4 + cycles / 2)?;
    let spec = opts.flag("pattern").unwrap_or("random");
    let ports = ft.num_leaves() as u32;
    let perm = make_pattern(spec, ports, seed)?;

    if fail_uplinks > ft.m() {
        return Err(CliError::Usage(format!(
            "--fail-uplinks {fail_uplinks} exceeds the {} uplinks of an edge switch",
            ft.m()
        )));
    }
    let mut faults = FaultSchedule::new();
    for t in 0..fail_uplinks {
        faults.kill_link(fail_at, ft.topology(), ft.up_channel(0, t));
    }

    // Deterministic routers precompute all pair paths; pattern routers fix
    // the assignment for this permutation.
    let policy = match router {
        "yuan" => Policy::from_single_path(
            &YuanDeterministic::new(&ft).map_err(|e| CliError::Failed(e.to_string()))?,
        ),
        "dmodk" => Policy::from_single_path(&DModK::new(&ft)),
        "smodk" => Policy::from_single_path(&SModK::new(&ft)),
        other => Policy::from_assignment(&route_named(&ft, other, &perm)?),
    };
    let cfg = SimConfig {
        warmup_cycles: cycles / 4,
        measure_cycles: cycles,
        arbiter,
        ..SimConfig::default()
    };
    let workload = Workload::permutation(&perm, rate);
    let stats =
        match engine {
            Engine::Cycle => Simulator::new(ft.topology(), cfg, policy)
                .try_run_with_faults_recorded(&workload, seed ^ 0xC0FFEE, &faults, rec),
            Engine::Event => EventSimulator::new(ft.topology(), cfg, policy)
                .try_run_with_faults_recorded(&workload, seed ^ 0xC0FFEE, &faults, rec),
        }
        .map_err(|e| CliError::Failed(e.to_string()))?;

    if json {
        return Ok(render_json(
            &ft,
            router,
            spec,
            rate,
            engine,
            fail_uplinks,
            fail_at,
            &stats,
        ));
    }
    let mut out = String::new();
    let engine_tag = match engine {
        Engine::Cycle => String::new(),
        Engine::Event => ", event engine".to_string(),
    };
    let _ = writeln!(
        out,
        "simulated `{spec}` at rate {rate} on ftree({}+{}, {}) with `{router}` ({arbiter:?}{engine_tag}):",
        ft.n(),
        ft.m(),
        ft.r()
    );
    if fail_uplinks > 0 {
        let _ = writeln!(
            out,
            "  faults: {fail_uplinks} uplink(s) of edge switch 0 die at cycle {fail_at}"
        );
    }
    let _ = writeln!(
        out,
        "  accepted throughput = {:.3} packets/cycle/source (offered {rate})",
        stats.accepted_throughput()
    );
    let _ = writeln!(
        out,
        "  latency: mean {:.1}, p50 {}, p95 {}, p99 {}, max {} cycles",
        stats.mean_latency(),
        stats.latency_p50,
        stats.latency_p95,
        stats.latency_p99,
        stats.latency_max
    );
    let _ = writeln!(
        out,
        "  injected {} / delivered {} (window: {} / {})",
        stats.injected_total,
        stats.delivered_total,
        stats.injected_in_window,
        stats.delivered_in_window
    );
    Ok(out)
}

/// One flat JSON object: run parameters plus the stats both engines agree
/// on exactly (bit-identical across `--engine cycle` and `--engine event`
/// for the same seed).
#[allow(clippy::too_many_arguments)]
fn render_json(
    ft: &Ftree,
    router: &str,
    pattern: &str,
    rate: f64,
    engine: Engine,
    fail_uplinks: usize,
    fail_at: u64,
    stats: &SimStats,
) -> String {
    let engine = match engine {
        Engine::Cycle => "cycle",
        Engine::Event => "event",
    };
    format!(
        concat!(
            "{{\"command\":\"simulate\",\"engine\":\"{engine}\",",
            "\"n\":{n},\"m\":{m},\"r\":{r},",
            "\"router\":\"{router}\",\"pattern\":\"{pattern}\",\"rate\":{rate},",
            "\"fail_uplinks\":{fail_uplinks},\"fail_at\":{fail_at},",
            "\"injected_total\":{injected},\"delivered_total\":{delivered},",
            "\"timed_out_total\":{timed_out},\"abandoned_total\":{abandoned},",
            "\"leftover_packets\":{leftover},\"injection_refusals\":{refusals},",
            "\"accepted_throughput\":{thr:.6},\"mean_latency\":{mlat:.3},",
            "\"latency_p50\":{p50},\"latency_p95\":{p95},\"latency_p99\":{p99},",
            "\"latency_max\":{lmax},\"conservation_ok\":{conservation}}}"
        ),
        engine = engine,
        n = ft.n(),
        m = ft.m(),
        r = ft.r(),
        router = router,
        pattern = pattern,
        rate = rate,
        fail_uplinks = fail_uplinks,
        fail_at = fail_at,
        injected = stats.injected_total,
        delivered = stats.delivered_total,
        timed_out = stats.timed_out_total,
        abandoned = stats.abandoned_total,
        leftover = stats.leftover_packets,
        refusals = stats.injection_refusals,
        thr = stats.accepted_throughput(),
        mlat = stats.mean_latency(),
        p50 = stats.latency_p50,
        p95 = stats.latency_p95,
        p99 = stats.latency_p99,
        lmax = stats.latency_max,
        conservation = stats.conservation_ok(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn nonblocking_line_rate() {
        let reg = Registry::new();
        let out = run(
            &argv("2 4 5 --pattern shift:3 --rate 0.9 --cycles 800"),
            &reg,
        )
        .unwrap();
        assert!(out.contains("accepted throughput"));
        let snap = reg.snapshot();
        assert!(snap.counter("sim.injected").unwrap_or(0) > 0);
        assert!(snap.spans.iter().any(|s| s.path == "sim.run"), "{snap:?}");
    }

    #[test]
    fn adaptive_policy_via_assignment() {
        let out = run(
            &argv("2 16 4 --router adaptive --pattern random --cycles 400"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("accepted throughput"));
    }

    #[test]
    fn event_engine_matches_cycle_engine_output() {
        let args = "2 4 5 --pattern shift:3 --rate 0.9 --cycles 800 --json true";
        let cycle = run(&argv(&format!("{args} --engine cycle")), &Registry::new()).unwrap();
        let reg = Registry::new();
        let event = run(&argv(&format!("{args} --engine event")), &reg).unwrap();
        assert_eq!(
            cycle.replace("\"engine\":\"cycle\"", "\"engine\":\"event\""),
            event,
            "engines must agree field for field"
        );
        let snap = reg.snapshot();
        assert!(snap.counter("evsim.injected").unwrap_or(0) > 0);
        assert!(snap.spans.iter().any(|s| s.path == "evsim.run"), "{snap:?}");
    }

    #[test]
    fn faulted_run_reports_the_outage() {
        let out = run(
            &argv("2 4 5 --pattern shift:3 --cycles 600 --fail-uplinks 2 --engine event"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("2 uplink(s) of edge switch 0 die"), "{out}");
        let err = run(&argv("2 4 5 --fail-uplinks 9"), &Registry::new()).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn engine_and_arbiter_parsing() {
        assert_eq!(parse_arbiter("hol").unwrap(), Arbiter::HolFifo);
        assert_eq!(
            parse_arbiter("islip:3").unwrap(),
            Arbiter::Voq { iterations: 3 }
        );
        assert_eq!(
            parse_arbiter("islip").unwrap(),
            Arbiter::Voq { iterations: 1 }
        );
        assert!(parse_arbiter("magic").is_err());
        assert!(parse_arbiter("islip:x").is_err());
        assert_eq!(parse_engine("cycle").unwrap(), Engine::Cycle);
        assert_eq!(parse_engine("event").unwrap(), Engine::Event);
        assert!(parse_engine("quantum").is_err());
    }
}
