//! `ftclos simulate <n> <m> <r> [--router R] [--pattern P] [--rate F]
//! [--cycles N] [--arbiter hol|islip:K] [--seed S]` — packet-level run.

use super::common::{build_ftree, make_pattern, route_named};
use crate::opts::{CliError, Opts};
use ftclos_obs::Registry;
use ftclos_routing::{DModK, SModK, YuanDeterministic};
use ftclos_sim::{Arbiter, Policy, SimConfig, Simulator, Workload};
use std::fmt::Write as _;

fn parse_arbiter(spec: &str) -> Result<Arbiter, CliError> {
    if spec == "hol" {
        return Ok(Arbiter::HolFifo);
    }
    if let Some(k) = spec.strip_prefix("islip:") {
        let iterations: u8 = k
            .parse()
            .map_err(|_| CliError::Usage(format!("islip wants an iteration count, got `{k}`")))?;
        return Ok(Arbiter::Voq { iterations });
    }
    if spec == "islip" {
        return Ok(Arbiter::Voq { iterations: 1 });
    }
    Err(CliError::Usage(format!(
        "unknown arbiter `{spec}` (hol | islip | islip:<k>)"
    )))
}

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let router = opts.flag("router").unwrap_or("yuan");
    let seed: u64 = opts.flag_or("seed", 0)?;
    let rate: f64 = opts.flag_or("rate", 1.0)?;
    let cycles: u64 = opts.flag_or("cycles", 2_000)?;
    let arbiter = parse_arbiter(opts.flag("arbiter").unwrap_or("hol"))?;
    let spec = opts.flag("pattern").unwrap_or("random");
    let ports = ft.num_leaves() as u32;
    let perm = make_pattern(spec, ports, seed)?;

    // Deterministic routers precompute all pair paths; pattern routers fix
    // the assignment for this permutation.
    let policy = match router {
        "yuan" => Policy::from_single_path(
            &YuanDeterministic::new(&ft).map_err(|e| CliError::Failed(e.to_string()))?,
        ),
        "dmodk" => Policy::from_single_path(&DModK::new(&ft)),
        "smodk" => Policy::from_single_path(&SModK::new(&ft)),
        other => Policy::from_assignment(&route_named(&ft, other, &perm)?),
    };
    let cfg = SimConfig {
        warmup_cycles: cycles / 4,
        measure_cycles: cycles,
        arbiter,
        ..SimConfig::default()
    };
    let stats = Simulator::new(ft.topology(), cfg, policy)
        .try_run_recorded(&Workload::permutation(&perm, rate), seed ^ 0xC0FFEE, rec)
        .map_err(|e| CliError::Failed(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated `{spec}` at rate {rate} on ftree({}+{}, {}) with `{router}` ({arbiter:?}):",
        ft.n(),
        ft.m(),
        ft.r()
    );
    let _ = writeln!(
        out,
        "  accepted throughput = {:.3} packets/cycle/source (offered {rate})",
        stats.accepted_throughput()
    );
    let _ = writeln!(
        out,
        "  latency: mean {:.1}, p50 {}, p95 {}, p99 {}, max {} cycles",
        stats.mean_latency(),
        stats.latency_p50,
        stats.latency_p95,
        stats.latency_p99,
        stats.latency_max
    );
    let _ = writeln!(
        out,
        "  injected {} / delivered {} (window: {} / {})",
        stats.injected_total,
        stats.delivered_total,
        stats.injected_in_window,
        stats.delivered_in_window
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn nonblocking_line_rate() {
        let reg = Registry::new();
        let out = run(
            &argv("2 4 5 --pattern shift:3 --rate 0.9 --cycles 800"),
            &reg,
        )
        .unwrap();
        assert!(out.contains("accepted throughput"));
        let snap = reg.snapshot();
        assert!(snap.counter("sim.injected").unwrap_or(0) > 0);
        assert!(snap.spans.iter().any(|s| s.path == "sim.run"), "{snap:?}");
    }

    #[test]
    fn adaptive_policy_via_assignment() {
        let out = run(
            &argv("2 16 4 --router adaptive --pattern random --cycles 400"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("accepted throughput"));
    }

    #[test]
    fn arbiter_parsing() {
        assert_eq!(parse_arbiter("hol").unwrap(), Arbiter::HolFifo);
        assert_eq!(
            parse_arbiter("islip:3").unwrap(),
            Arbiter::Voq { iterations: 3 }
        );
        assert_eq!(
            parse_arbiter("islip").unwrap(),
            Arbiter::Voq { iterations: 1 }
        );
        assert!(parse_arbiter("magic").is_err());
        assert!(parse_arbiter("islip:x").is_err());
    }
}
