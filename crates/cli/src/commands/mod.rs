//! Command implementations. Each command is
//! `run(&Opts, &Registry) -> Result<String>`: arguments plus the run's
//! observability registry (span timers / counters for `--trace`) in, text
//! out.

pub mod blocking;
pub mod build;
pub mod campaign;
pub mod churn;
pub mod common;
pub mod congestion;
pub mod deadlock;
pub mod design;
pub mod faults;
pub mod flowsim;
pub mod route;
pub mod simulate;
pub mod stats;
pub mod table1;
pub mod verify;
