//! Command implementations. Each command is `run(&Opts) -> Result<String>`.

pub mod blocking;
pub mod build;
pub mod churn;
pub mod common;
pub mod design;
pub mod faults;
pub mod flowsim;
pub mod route;
pub mod simulate;
pub mod table1;
pub mod verify;
