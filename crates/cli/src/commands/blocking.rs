//! `ftclos blocking <n> <m> <r> [--router R] [--samples N] [--seed S]` —
//! estimate the blocking probability over random permutations.

use super::common::{build_ftree, route_named, ROUTERS};
use crate::opts::{CliError, Opts};
use ftclos_obs::{Recorder as _, Registry};
use ftclos_traffic::patterns;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let router = opts.flag("router").unwrap_or("dmodk");
    if !ROUTERS.contains(&router) {
        return Err(CliError::Usage(format!(
            "unknown router `{router}` (one of {ROUTERS:?})"
        )));
    }
    let samples: usize = opts.flag_or("samples", 200)?;
    let seed: u64 = opts.flag_or("seed", 0)?;
    let ports = ft.num_leaves() as u32;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut blocked = 0usize;
    let mut max_load_seen = 0u32;
    let sample_span = rec.span("blocking.sample");
    for _ in 0..samples {
        let perm = patterns::random_full(ports, &mut rng);
        match route_named(&ft, router, &perm) {
            Ok(a) => {
                let load = a.max_channel_load();
                max_load_seen = max_load_seen.max(load);
                if load > 1 {
                    blocked += 1;
                }
            }
            Err(_) => blocked += 1, // fabric too small for the scheme
        }
    }
    drop(sample_span);
    rec.add("blocking.permutations", samples as u64);
    rec.add("blocking.blocked", blocked as u64);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ftree({}+{}, {}) under `{router}`: {samples} random permutations",
        ft.n(),
        ft.m(),
        ft.r()
    );
    let _ = writeln!(
        out,
        "  blocking fraction = {:.3} ({blocked}/{samples} blocked, worst link load {max_load_seen})",
        blocked as f64 / samples.max(1) as f64
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn dmodk_blocks_sometimes() {
        let reg = Registry::new();
        let out = run(&argv("2 2 5 --samples 60"), &reg).unwrap();
        assert!(out.contains("blocking fraction"));
        assert!(!out.contains("= 0.000"));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("blocking.permutations"), Some(60));
        assert!(snap.counter("blocking.blocked").unwrap_or(0) > 0);
    }

    #[test]
    fn yuan_never_blocks() {
        let out = run(&argv("2 4 5 --router yuan --samples 60"), &Registry::new()).unwrap();
        assert!(out.contains("= 0.000"));
    }

    #[test]
    fn unknown_router() {
        assert!(run(&argv("2 4 5 --router warp"), &Registry::new()).is_err());
    }
}
