//! Shared helpers: fabric construction, pattern parsing, named routers.

use crate::opts::{CliError, Opts};
use ftclos_routing::{
    route_all, DModK, GreedyLocalAdaptive, NonblockingAdaptive, PatternRouter, RearrangeableRouter,
    RouteAssignment, SModK, YuanDeterministic,
};
use ftclos_topo::Ftree;
use ftclos_traffic::{patterns, Permutation};
use rand::SeedableRng;

/// Build `ftree(n+m, r)` from the command's positional triple.
pub fn build_ftree(opts: &Opts) -> Result<Ftree, CliError> {
    let (n, m, r) = opts.nmr()?;
    Ftree::new(n, m, r).map_err(|e| CliError::Failed(format!("cannot build ftree: {e}")))
}

/// Parse a `--pattern` spec into a permutation over `ports` leaves.
///
/// Specs: `shift:<k>`, `random`, `transpose`, `bitrev`, `neighbor`,
/// `tornado`, `identity`. Random uses `seed`.
pub fn make_pattern(spec: &str, ports: u32, seed: u64) -> Result<Permutation, CliError> {
    let bad = |msg: String| CliError::Usage(msg);
    if let Some(k) = spec.strip_prefix("shift:") {
        let k: u32 = k
            .parse()
            .map_err(|_| bad(format!("shift wants an integer, got `{k}`")))?;
        return Ok(patterns::shift(ports, k));
    }
    match spec {
        "random" => {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            Ok(patterns::random_full(ports, &mut rng))
        }
        "identity" => Ok(patterns::identity(ports)),
        "tornado" => Ok(patterns::tornado(ports)),
        "neighbor" => patterns::neighbor(ports).map_err(|e| bad(e.to_string())),
        "bitrev" => patterns::bit_reversal(ports).map_err(|e| bad(e.to_string())),
        "transpose" => {
            let rows = (1..=ports)
                .rev()
                .find(|r| ports.is_multiple_of(*r) && r * r <= ports)
                .ok_or_else(|| bad(format!("no transpose factorization of {ports}")))?;
            Ok(patterns::transpose(rows, ports / rows))
        }
        other => Err(bad(format!(
            "unknown pattern `{other}` (try shift:<k>, random, transpose, bitrev, neighbor, tornado, identity)"
        ))),
    }
}

/// The router names accepted by `--router`.
pub const ROUTERS: &[&str] = &[
    "yuan",
    "dmodk",
    "smodk",
    "adaptive",
    "greedy",
    "rearrangeable",
];

/// Route `perm` on `ft` with the named router.
pub fn route_named(
    ft: &Ftree,
    name: &str,
    perm: &Permutation,
) -> Result<RouteAssignment, CliError> {
    let fail = |e: ftclos_routing::RoutingError| CliError::Failed(e.to_string());
    match name {
        "yuan" => route_all(&YuanDeterministic::new(ft).map_err(fail)?, perm).map_err(fail),
        "dmodk" => route_all(&DModK::new(ft), perm).map_err(fail),
        "smodk" => route_all(&SModK::new(ft), perm).map_err(fail),
        "adaptive" => NonblockingAdaptive::new(ft)
            .map_err(fail)?
            .route_pattern(perm)
            .map_err(fail),
        "greedy" => GreedyLocalAdaptive::new(ft)
            .route_pattern(perm)
            .map_err(fail),
        "rearrangeable" => RearrangeableRouter::new(ft)
            .map_err(fail)?
            .route_pattern(perm)
            .map_err(fail),
        other => Err(CliError::Usage(format!(
            "unknown router `{other}` (one of {ROUTERS:?})"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_parse() {
        assert_eq!(make_pattern("shift:2", 6, 0).unwrap().dst_of(0), Some(2));
        assert!(make_pattern("random", 6, 1).unwrap().is_full());
        assert!(make_pattern("identity", 6, 0).unwrap().is_full());
        assert!(make_pattern("bitrev", 8, 0).is_ok());
        assert!(make_pattern("bitrev", 6, 0).is_err());
        assert!(make_pattern("shift:x", 6, 0).is_err());
        assert!(make_pattern("nope", 6, 0).is_err());
    }

    #[test]
    fn routers_dispatch() {
        let ft = Ftree::new(2, 4, 5).unwrap();
        let perm = make_pattern("shift:3", 10, 0).unwrap();
        for r in ROUTERS {
            if *r == "rearrangeable" || *r == "yuan" || *r == "adaptive" {
                continue; // constraints checked below
            }
            assert!(route_named(&ft, r, &perm).is_ok(), "{r}");
        }
        assert!(route_named(&ft, "yuan", &perm).is_ok());
        assert!(route_named(&ft, "rearrangeable", &perm).is_ok());
        // NONBLOCKINGADAPTIVE needs whole configurations of (c+1)·n tops;
        // give it an amply-sized fabric.
        let roomy = Ftree::new(2, 16, 4).unwrap();
        let perm8 = make_pattern("shift:3", 8, 0).unwrap();
        assert!(route_named(&roomy, "adaptive", &perm8).is_ok());
        // And it reports NotEnoughTops on the tight one.
        assert!(route_named(&ft, "adaptive", &perm).is_err());
        assert!(route_named(&ft, "bogus", &perm).is_err());
        // Yuan rejects m < n^2.
        let small = Ftree::new(2, 3, 5).unwrap();
        assert!(route_named(&small, "yuan", &perm).is_err());
    }
}
