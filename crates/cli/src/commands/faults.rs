//! `ftclos faults <n> <m> <r> [--fail-tops K] [--fail-links K] [--seed S]
//! [--samples N] [--max-k K]` — degraded-operation analysis under injected
//! hardware failures.
//!
//! Reports, for the faulted fabric:
//! * how many source-destination pairs the Theorem 3 deterministic routing
//!   loses (its top assignment is pinned, so a dead top strands pairs), and
//!   whether the surviving routes still satisfy Lemma 1;
//! * whether masked oblivious multipath can spread a permutation over the
//!   remaining paths;
//! * the masked NONBLOCKINGADAPTIVE verdict over sampled permutations;
//! * the survivability margin: the largest `k` such that **any** `k`
//!   simultaneous top-switch failures leave the adaptive routing
//!   contention-free.

use super::common::{build_ftree, make_pattern};
use crate::opts::{CliError, Opts};
use ftclos_core::{
    adaptive_degraded_verdict, deterministic_degradation, max_survivable_top_failures,
    DegradedVerdict,
};
use ftclos_obs::{Recorder as _, Registry};
use ftclos_routing::{ObliviousMultipath, SpreadPolicy, YuanDeterministic};
use ftclos_topo::{FaultSet, FaultyView};
use std::fmt::Write as _;

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let fail_tops: usize = opts.flag_or("fail-tops", 1)?;
    let fail_links: usize = opts.flag_or("fail-links", 0)?;
    let seed: u64 = opts.flag_or("seed", 0)?;
    let samples: usize = opts.flag_or("samples", 50)?;
    let max_k: usize = opts.flag_or("max-k", 2)?;
    if fail_tops > ft.m() {
        return Err(CliError::Usage(format!(
            "--fail-tops {fail_tops} exceeds the {} top switches",
            ft.m()
        )));
    }

    let mut faults = FaultSet::new();
    for t in 0..fail_tops {
        faults.fail_switch(ft.top(t));
    }
    if fail_links > 0 {
        faults.merge(&FaultSet::random_links(ft.topology(), fail_links, seed));
    }
    let view = FaultyView::new(ft.topology(), &faults);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "ftree({}+{}, {}): failed {} top switch(es), {} random link(s) -> {} dead channel(s)",
        ft.n(),
        ft.m(),
        ft.r(),
        fail_tops,
        fail_links,
        view.num_dead_channels()
    );

    rec.gauge("faults.dead_channels", view.num_dead_channels() as u64);

    // Theorem 3 deterministic: pinned top assignment, so it cannot route
    // around anything — count what it loses.
    let det_span = rec.span("faults.deterministic");
    match YuanDeterministic::new(&ft) {
        Ok(router) => {
            let deg = deterministic_degradation(&router, &view);
            let _ = writeln!(
                out,
                "yuan deterministic: {}/{} pairs routable ({:.1}% lost), surviving routes {}",
                deg.routable_pairs(),
                deg.total_pairs,
                deg.unroutable_fraction() * 100.0,
                match &deg.lemma1 {
                    Ok(()) => "satisfy Lemma 1".to_string(),
                    Err(v) => format!("VIOLATE Lemma 1 on channel {:?}", v.channel),
                }
            );
        }
        Err(e) => {
            let _ = writeln!(out, "yuan deterministic: unavailable ({e})");
        }
    }
    drop(det_span);

    // Masked oblivious multipath on one permutation.
    let mp_span = rec.span("faults.multipath");
    let ports = ft.num_leaves() as u32;
    let perm = make_pattern("random", ports, seed)?;
    let mp = ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin);
    match mp.spread_pattern_masked(&perm, &view) {
        Ok(a) => {
            let _ = writeln!(
                out,
                "masked multipath:   random permutation spread over live paths ({} flows)",
                a.entries().len()
            );
        }
        Err(e) => {
            let _ = writeln!(out, "masked multipath:   {e}");
        }
    }
    drop(mp_span);

    // Masked adaptive verdict under the injected faults.
    let ad_span = rec.span("faults.adaptive");
    match adaptive_degraded_verdict(&ft, &view, samples, seed) {
        Ok(v) => {
            let _ = writeln!(out, "masked adaptive:    {}", describe_verdict(&v));
        }
        Err(e) => {
            let _ = writeln!(out, "masked adaptive:    unavailable ({e})");
        }
    }
    drop(ad_span);

    // Survivability margin over top-switch failures (independent of the
    // injected fault set: sweeps its own subsets).
    if max_k > 0 {
        let _s = rec.span("faults.survivability");
        match max_survivable_top_failures(&ft, max_k, samples, 64, seed) {
            Ok(report) => {
                let _ = writeln!(out, "survivability:      max k = {}", report.max_k);
                for level in &report.levels {
                    let mut line = format!(
                        "  k={}: {} ({} subset(s){})",
                        level.k,
                        describe_verdict(&level.verdict),
                        level.subsets_checked,
                        if level.exhaustive {
                            ", exhaustive"
                        } else {
                            ", sampled"
                        }
                    );
                    if let Some(cx) = &level.counterexample {
                        let _ = write!(line, ", failing tops {cx:?}");
                    }
                    let _ = writeln!(out, "{line}");
                }
            }
            Err(e) => {
                let _ = writeln!(out, "survivability:      unavailable ({e})");
            }
        }
    }
    Ok(out)
}

fn describe_verdict(v: &DegradedVerdict) -> String {
    match v {
        DegradedVerdict::ContentionFree {
            permutations,
            exhaustive,
        } => format!(
            "CONTENTION-FREE over {permutations} {} permutation(s)",
            if *exhaustive { "(all)" } else { "sampled" }
        ),
        DegradedVerdict::Unroutable { src, dst } => {
            format!("UNROUTABLE pair {src} -> {dst} (no live path exists)")
        }
        DegradedVerdict::PlanExhausted { needed, available } => {
            format!("PLAN EXHAUSTED (needed {needed} tops, fabric has {available})")
        }
        DegradedVerdict::Contention { pairs } => {
            format!("CONTENTION on a permutation of {} pairs", pairs.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn spare_fabric_survives_single_top_failure() {
        // ftree(3+12, 9) has a spare partition: config 1 absorbs any single
        // dead top, and the survivability sweep proves max k >= 1.
        let reg = Registry::new();
        let out = run(&argv("3 12 9 --fail-tops 1 --samples 10 --max-k 1"), &reg).unwrap();
        assert!(out.contains("masked adaptive:    CONTENTION-FREE"), "{out}");
        assert!(out.contains("max k = 1"), "{out}");
        // Yuan's pinned assignment loses r(r-1) = 72 pairs to the dead top.
        assert!(out.contains("pairs routable"), "{out}");
        assert!(out.contains("satisfy Lemma 1"), "{out}");
        // Every analysis phase shows up as a span.
        let snap = reg.snapshot();
        for phase in [
            "faults.deterministic",
            "faults.multipath",
            "faults.adaptive",
            "faults.survivability",
        ] {
            assert!(
                snap.spans.iter().any(|s| s.path == phase),
                "missing {phase}"
            );
        }
    }

    #[test]
    fn yuan_reports_lost_pairs() {
        let out = run(
            &argv("2 4 5 --fail-tops 1 --samples 5 --max-k 0"),
            &Registry::new(),
        )
        .unwrap();
        // r(r-1) = 20 of the 90 cross pairs ride top 0.
        assert!(out.contains("70/90 pairs routable"), "{out}");
    }

    #[test]
    fn too_many_tops_rejected() {
        assert!(run(&argv("2 4 5 --fail-tops 99"), &Registry::new()).is_err());
    }
}
