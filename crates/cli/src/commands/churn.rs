//! `ftclos churn <n> <m> <r> [--links K] [--mtbf N] [--mttr N] [--cycles N]
//! [--rate F] [--mode pinned|percycle|hysteresis:K] [--samples N] [--seed S]
//! [--target F --max-m M]` — transient-fault churn: flap random cables with
//! exponential MTBF/MTTR, replay the trace through the exact availability
//! checker, and simulate packet flow under the chosen re-planning mode.

use super::common::build_ftree;
use crate::opts::{CliError, Opts};
use ftclos_core::churn::{availability, min_m_for_availability, ChurnEvent};
use ftclos_obs::{Recorder as _, Registry};
use ftclos_routing::{ObliviousMultipath, SpreadPolicy};
use ftclos_sim::{
    Arbiter, ChurnConfig, ChurnSchedule, Policy, ReplanMode, SimConfig, Simulator, Workload,
};
use ftclos_topo::Ftree;
use ftclos_traffic::patterns;
use std::fmt::Write as _;

fn parse_mode(spec: &str) -> Result<ReplanMode, CliError> {
    if spec == "pinned" {
        return Ok(ReplanMode::Pinned);
    }
    if spec == "percycle" {
        return Ok(ReplanMode::PerCycle);
    }
    if let Some(k) = spec.strip_prefix("hysteresis:") {
        let k: u64 = k
            .parse()
            .map_err(|_| CliError::Usage(format!("hysteresis wants a cycle count, got `{k}`")))?;
        return Ok(ReplanMode::Hysteresis { k });
    }
    Err(CliError::Usage(format!(
        "unknown mode `{spec}` (pinned | percycle | hysteresis:<k>)"
    )))
}

/// Convert the simulator's schedule into the analyzer's event list.
fn to_core_events(schedule: &ChurnSchedule) -> Vec<ChurnEvent> {
    schedule
        .sorted_events()
        .iter()
        .map(|e| ChurnEvent::new(e.cycle, e.channel, e.transition))
        .collect()
}

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let links: usize = opts.flag_or("links", 1)?;
    let mtbf: u64 = opts.flag_or("mtbf", 400)?;
    let mttr: u64 = opts.flag_or("mttr", 100)?;
    let cycles: u64 = opts.flag_or("cycles", 2_000)?;
    let rate: f64 = opts.flag_or("rate", 0.6)?;
    let samples: usize = opts.flag_or("samples", 25)?;
    let seed: u64 = opts.flag_or("seed", 0)?;
    let mode = parse_mode(opts.flag("mode").unwrap_or("hysteresis:50"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(CliError::Usage(format!(
            "--rate {rate} must be within [0, 1]"
        )));
    }

    let schedule = ChurnSchedule::flapping_links(ft.topology(), links, mtbf, mttr, cycles, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "churn on ftree({}+{}, {}): {} flapping link(s), mtbf {mtbf} / mttr {mttr}, \
         {} transition(s) over {cycles} cycles (seed {seed})",
        ft.n(),
        ft.m(),
        ft.r(),
        links,
        schedule.len()
    );

    // Flow-level availability: replay the trace through the exact checker.
    let avail_span = rec.span("churn.availability");
    let events = to_core_events(&schedule);
    let report = availability(&ft, &events, cycles, samples, seed)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    drop(avail_span);
    let _ = writeln!(
        out,
        "availability: {:.4} of time, {:.4} of epochs nonblocking ({} epoch(s))",
        report.time_availability(),
        report.epoch_availability(),
        report.epochs.len()
    );
    if let Some(worst) = report.worst_epoch() {
        let _ = writeln!(
            out,
            "  worst epoch [{}, {}): {} dead channel(s), blocking",
            worst.start, worst.end, worst.down_channels
        );
    }

    // Packet-level simulation under the chosen re-planning mode.
    let mp = ObliviousMultipath::new(&ft, SpreadPolicy::Random);
    let perm = patterns::shift(ft.num_leaves() as u32, 1);
    let cfg = SimConfig {
        warmup_cycles: cycles / 4,
        measure_cycles: cycles,
        ttl_cycles: 50,
        retry: true,
        retry_limit: 4,
        drain: true,
        arbiter: Arbiter::Voq { iterations: 2 },
        ..SimConfig::default()
    };
    let churn_cfg = ChurnConfig {
        mode,
        epsilon: 0.1,
        recovery_window: 50,
    };
    let (stats, churn_report) =
        Simulator::new(ft.topology(), cfg, Policy::from_multipath(&mp, true))
            .try_run_churn_recorded(
                &Workload::permutation(&perm, rate),
                seed ^ 0xC0FFEE,
                &schedule,
                &churn_cfg,
                rec,
            )
            .map_err(|e| CliError::Failed(e.to_string()))?;
    let _ = writeln!(
        out,
        "simulation ({mode:?}): steady {:.3} pkt/cycle, delivered {} / injected {}, \
         lost {}, {} timeout(s), {} retransmission(s)",
        churn_report.steady_rate,
        stats.delivered_total,
        stats.injected_total,
        churn_report.packets_lost(),
        stats.timed_out_total,
        stats.retries_total
    );
    let _ = writeln!(
        out,
        "  {} transition epoch(s), {} reconverged{}",
        churn_report.transitions(),
        churn_report.reconverged(),
        match churn_report.mean_reconverge_cycles() {
            Some(t) => format!(", mean time-to-reconverge {t:.0} cycles"),
            None => String::new(),
        }
    );

    // Optional: minimum m meeting an availability target under this flap
    // model (trace regenerated per fabric — channel ids depend on m).
    if let Some(raw) = opts.flag("target") {
        let _s = rec.span("churn.min_m");
        let target: f64 = raw
            .parse()
            .map_err(|_| CliError::Usage(format!("--target got invalid value `{raw}`")))?;
        let max_m: usize = opts.flag_or("max-m", ft.m().max(ft.n() * ft.n()))?;
        let trace = |f: &Ftree| {
            to_core_events(&ChurnSchedule::flapping_links(
                f.topology(),
                links,
                mtbf,
                mttr,
                cycles,
                seed,
            ))
        };
        let found =
            min_m_for_availability(ft.n(), ft.r(), max_m, target, cycles, samples, seed, trace)
                .map_err(|e| CliError::Failed(e.to_string()))?;
        match found {
            Some((m, rep)) => {
                let _ = writeln!(
                    out,
                    "min m for availability >= {target}: m = {m} (achieves {:.4})",
                    rep.time_availability()
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "min m for availability >= {target}: none up to m = {max_m}"
                );
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode("pinned").unwrap(), ReplanMode::Pinned);
        assert_eq!(parse_mode("percycle").unwrap(), ReplanMode::PerCycle);
        assert_eq!(
            parse_mode("hysteresis:40").unwrap(),
            ReplanMode::Hysteresis { k: 40 }
        );
        assert!(parse_mode("hysteresis:x").is_err());
        assert!(parse_mode("sometimes").is_err());
    }

    #[test]
    fn end_to_end_churn_run() {
        let reg = Registry::new();
        let out = run(
            &argv("2 4 3 --links 1 --mtbf 200 --mttr 60 --cycles 600 --samples 10 --seed 3"),
            &reg,
        )
        .unwrap();
        assert!(out.contains("availability:"), "{out}");
        assert!(out.contains("simulation"), "{out}");
        let snap = reg.snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "churn.availability"));
        assert!(snap.counter("sim.injected").unwrap_or(0) > 0);
    }

    #[test]
    fn min_m_target_sweep() {
        let out = run(
            &argv(
                "2 4 3 --links 1 --mtbf 200 --mttr 60 --cycles 400 --samples 10 \
                 --seed 3 --target 0.5 --max-m 6",
            ),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("min m for availability"), "{out}");
    }

    #[test]
    fn bad_arguments_are_usage_errors() {
        assert!(matches!(
            run(&argv("2 4 3 --rate 1.5"), &Registry::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("2 4 3 --mode wild"), &Registry::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("2 4 3 --target zero"), &Registry::new()),
            Err(CliError::Usage(_))
        ));
    }
}
