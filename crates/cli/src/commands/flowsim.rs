//! `ftclos flowsim <n> <m> <r> [--router R] [--pattern P] [--seed S]
//! [--json] [--fail-tops K] [--fail-links K]` — max-min fair fluid
//! flow-rate simulation: the delivered throughput each flow settles at.
//!
//! Without `--pattern`, sweeps the standard adversarial suite and prints
//! one line per pattern; with `--pattern`, solves just that pattern.
//! `--json` emits the same reports as a JSON array (the shape the E19
//! bench writes). `--fail-tops` / `--fail-links` solve on the surviving
//! hardware via the fault-masked routing variants.

use super::common::{build_ftree, make_pattern};
use crate::opts::{CliError, Opts};
use ftclos_flowsim::{standard_suite, sweep_patterns_with, FluidReport};
use ftclos_obs::Registry;
use ftclos_routing::{
    DModK, FaultAware, LinkLoadView, MaskedAdaptive, MaskedMultipath, NonblockingAdaptive,
    ObliviousMultipath, PlanStrategy, SModK, SpreadPolicy, YuanDeterministic,
};
use ftclos_topo::{ChannelCapacities, FaultSet, FaultyView, Ftree};
use ftclos_traffic::Permutation;
use std::fmt::Write as _;

/// Router names `ftclos flowsim` accepts (`greedy`/`rearrangeable` have no
/// fault-masked variant, so they are healthy-fabric only).
pub const FLOWSIM_ROUTERS: &[&str] = &[
    "yuan",
    "dmodk",
    "smodk",
    "adaptive",
    "multipath",
    "greedy",
    "rearrangeable",
];

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let router: String = opts.flag_or("router", "yuan".to_string())?;
    let seed: u64 = opts.flag_or("seed", 0)?;
    let fail_tops: usize = opts.flag_or("fail-tops", 0)?;
    let fail_links: usize = opts.flag_or("fail-links", 0)?;
    let json: bool = opts.flag_or("json", false)?;
    if fail_tops > ft.m() {
        return Err(CliError::Usage(format!(
            "--fail-tops {fail_tops} exceeds the {} top switches",
            ft.m()
        )));
    }

    let ports = ft.num_leaves() as u32;
    let suite: Vec<(String, Permutation)> = match opts.flag("pattern") {
        Some(spec) => vec![(spec.to_string(), make_pattern(spec, ports, seed)?)],
        None => standard_suite(ports),
    };
    let caps = ChannelCapacities::unit(ft.topology());

    let faulted = fail_tops > 0 || fail_links > 0;
    let mut faults = FaultSet::new();
    for t in 0..fail_tops {
        faults.fail_switch(ft.top(t));
    }
    if fail_links > 0 {
        faults.merge(&FaultSet::random_links(ft.topology(), fail_links, seed));
    }
    let view = FaultyView::new(ft.topology(), &faults);

    let fail = |e: ftclos_routing::RoutingError| CliError::Failed(e.to_string());
    let reports = match (router.as_str(), faulted) {
        ("yuan", false) => solve(
            &YuanDeterministic::new(&ft).map_err(fail)?,
            &suite,
            &caps,
            rec,
        ),
        ("yuan", true) => solve(
            &FaultAware::new(YuanDeterministic::new(&ft).map_err(fail)?, &view),
            &suite,
            &caps,
            rec,
        ),
        ("dmodk", false) => solve(&DModK::new(&ft), &suite, &caps, rec),
        ("dmodk", true) => solve(&FaultAware::new(DModK::new(&ft), &view), &suite, &caps, rec),
        ("smodk", false) => solve(&SModK::new(&ft), &suite, &caps, rec),
        ("smodk", true) => solve(&FaultAware::new(SModK::new(&ft), &view), &suite, &caps, rec),
        ("multipath", false) => solve(
            &ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin),
            &suite,
            &caps,
            rec,
        ),
        ("multipath", true) => solve(
            &MaskedMultipath::new(
                ObliviousMultipath::new(&ft, SpreadPolicy::RoundRobin),
                &view,
            ),
            &suite,
            &caps,
            rec,
        ),
        ("adaptive", false) => {
            let ad = NonblockingAdaptive::new(&ft).map_err(fail)?;
            solve(&ad, &suite, &caps, rec)
        }
        ("adaptive", true) => {
            let ad = NonblockingAdaptive::new(&ft).map_err(fail)?;
            solve(
                &MaskedAdaptive::new(&ad, &view, PlanStrategy::GreedyLargestSubset),
                &suite,
                &caps,
                rec,
            )
        }
        ("greedy", false) => solve(
            &ftclos_routing::GreedyLocalAdaptive::new(&ft),
            &suite,
            &caps,
            rec,
        ),
        ("rearrangeable", false) => solve(
            &ftclos_routing::RearrangeableRouter::new(&ft).map_err(fail)?,
            &suite,
            &caps,
            rec,
        ),
        ("greedy" | "rearrangeable", true) => {
            return Err(CliError::Usage(format!(
                "router `{router}` has no fault-masked variant (drop --fail-tops/--fail-links)"
            )))
        }
        (other, _) => {
            return Err(CliError::Usage(format!(
                "unknown router `{other}` (one of {FLOWSIM_ROUTERS:?})"
            )))
        }
    };

    if json {
        return Ok(render_json(&reports));
    }
    render_text(&ft, &router, faulted, view.num_dead_channels(), &reports)
}

/// Sweep the suite through one view; routing failures become per-pattern
/// error strings rather than sinking the whole command.
fn solve<V: LinkLoadView + Sync + ?Sized>(
    view: &V,
    suite: &[(String, Permutation)],
    caps: &ChannelCapacities,
    rec: &Registry,
) -> Vec<(String, Result<FluidReport, String>)> {
    sweep_patterns_with(view, suite, caps, rec)
        .into_iter()
        .zip(suite)
        .map(|(res, (name, _))| (name.clone(), res.map_err(|e| e.to_string())))
        .collect()
}

fn render_json(reports: &[(String, Result<FluidReport, String>)]) -> String {
    let items: Vec<String> = reports
        .iter()
        .map(|(name, res)| match res {
            Ok(r) => r.to_json(),
            Err(e) => format!(
                "{{\"pattern\":{},\"error\":{}}}",
                json_string(name),
                json_string(e)
            ),
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// Minimal JSON string escaping for the error branch (reports escape their
/// own fields).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_text(
    ft: &Ftree,
    router: &str,
    faulted: bool,
    dead_channels: usize,
    reports: &[(String, Result<FluidReport, String>)],
) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fluid flow-rate simulation: ftree({}+{}, {}), {} hosts, router {}{}",
        ft.n(),
        ft.m(),
        ft.r(),
        ft.num_leaves(),
        router,
        if faulted {
            format!(" (fault-masked, {dead_channels} dead channel(s))")
        } else {
            String::new()
        }
    );
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>10} {:>8} {:>8} {:>11} {:>7}  util deciles",
        "pattern", "flows", "delivered", "mean", "worst", "demand-max", "rounds"
    );
    for (name, res) in reports {
        match res {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "{:<16} {:>6} {:>10.4} {:>8.4} {:>8.4} {:>11.4} {:>7}  {}{}",
                    r.pattern,
                    r.num_flows,
                    r.aggregate_throughput,
                    r.mean_rate,
                    r.worst_rate,
                    r.max_demand_congestion,
                    r.rounds,
                    r.utilization.to_compact_string(),
                    if r.all_unit_rate { "  [full rate]" } else { "" }
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{name:<16} unroutable: {e}");
            }
        }
    }
    let delivered_all = reports
        .iter()
        .all(|(_, r)| r.as_ref().map(|r| r.all_unit_rate).unwrap_or(false));
    let _ = writeln!(
        out,
        "verdict: {}",
        if delivered_all {
            "every tested pattern delivered at full rate (fluid-nonblocking)"
        } else {
            "some pattern degrades below unit rate (fluid-blocking)"
        }
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn yuan_full_fabric_delivers_everything() {
        let reg = Registry::new();
        let out = run(&argv("2 4 5"), &reg).unwrap();
        assert!(out.contains("fluid-nonblocking"), "{out}");
        assert!(out.contains("[full rate]"), "{out}");
        let snap = reg.snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "flowsim.sweep"));
        assert!(snap.counter("flowsim.rounds").unwrap_or(0) > 0);
    }

    #[test]
    fn undersized_single_path_degrades_on_some_pattern() {
        // m = n: random permutations collide under d-mod-k.
        let out = run(
            &argv("2 2 5 --router dmodk --pattern random --seed 3"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("fluid-blocking"), "{out}");
    }

    #[test]
    fn json_is_emitted_and_structured() {
        let out = run(
            &argv("2 4 5 --pattern shift:3 --json true"),
            &Registry::new(),
        )
        .unwrap();
        assert!(
            out.starts_with('[') && out.trim_end().ends_with(']'),
            "{out}"
        );
        assert!(out.contains("\"router\":\"yuan-deterministic\""), "{out}");
        assert!(out.contains("\"all_unit_rate\":true"), "{out}");
    }

    #[test]
    fn fault_masked_multipath_concentrates_load() {
        let out = run(
            &argv("2 4 5 --router multipath --fail-tops 1"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("fault-masked"), "{out}");
        assert!(out.contains("dead channel"), "{out}");
    }

    #[test]
    fn faulted_deterministic_reports_unroutable_patterns() {
        // Yuan's pinned top (0,0) dies; shifts that use it become
        // unroutable instead of crashing the command.
        let out = run(
            &argv("2 4 5 --fail-tops 1 --pattern shift:2"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("unroutable"), "{out}");
    }

    #[test]
    fn bad_inputs_are_usage_errors_not_panics() {
        assert!(matches!(
            run(&argv("2 4 5 --router warp"), &Registry::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("2 4 5 --fail-tops 99"), &Registry::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(
                &argv("2 4 5 --router greedy --fail-tops 1"),
                &Registry::new()
            ),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("2 4 5 --pattern nope"), &Registry::new()),
            Err(CliError::Usage(_))
        ));
    }
}
