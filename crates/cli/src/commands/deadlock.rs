//! `ftclos deadlock <n> <m> <r> [--router R|all] [--fail-tops K]
//! [--fail-links K] [--seed S] [--churn-links K --mtbf N --mttr N
//! --churn-cycles N] [--inject] [--inject-cycles N] [--queue-capacity K]
//! [--json]` — channel-dependency deadlock analysis (Dally–Seitz).
//!
//! Builds the channel-dependency graph of each routing scheme's full route
//! set and runs the cycle check: an acyclic CDG *proves* the routing
//! deadlock-free under any credit-based flow control; a cycle yields a
//! deterministic witness (lowest cyclic channel, minimal length). The
//! `valley` router is the in-tree counterexample the analyzer must catch.
//!
//! `--churn-links` replays a flapping-cable schedule and re-proves (or
//! refutes) every distinct fault epoch the fabric passes through.
//!
//! `--inject` closes the loop dynamically: the witness cycle is attributed
//! back to SD routes, those routes are pinned in the packet simulator under
//! finite credits, and the run wedges — the drain phase gives up with
//! packets stranded in the cycle's queues while packet conservation still
//! holds. A control run over the same pairs with up*/down* `dmodk` routes
//! drains clean, isolating the cycle as the cause.

use super::common::build_ftree;
use crate::opts::{CliError, Opts};
use ftclos_core::cdg::{
    cdg_of_masked_router_with, cdg_of_multipath_with, cdg_of_router_with, deadlock_sweep_with,
    unique_churn_fault_sets,
};
use ftclos_core::churn::ChurnEvent;
use ftclos_core::{attribute_witness, CycleAnalysis, DeadlockVerdict, SweepEntry, ValleyRouter};
use ftclos_obs::{Recorder as _, Registry};
use ftclos_routing::{DModK, SModK, SinglePathRouter, YuanDeterministic};
use ftclos_sim::{run_pinned_injection_recorded, PinnedRoute, WitnessRun};
use ftclos_topo::{ChannelId, FaultSet, FaultyView, Ftree};
use ftclos_traffic::SdPair;
use std::fmt::Write as _;

/// A boxed path enumerator: feed every (live) route of a pair to `emit`,
/// the closure shape `attribute_witness` consumes.
type PathsOf<'a> = Box<dyn Fn(SdPair, &mut dyn FnMut(&[ChannelId])) + 'a>;

/// Routers the deadlock analyzer accepts.
pub const DEADLOCK_ROUTERS: &[&str] = &[
    "yuan",
    "dmodk",
    "smodk",
    "multipath",
    "adaptive",
    "valley",
    "all",
];

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let router: String = opts.flag_or("router", "all".to_string())?;
    let fail_tops: usize = opts.flag_or("fail-tops", 0)?;
    let fail_links: usize = opts.flag_or("fail-links", 0)?;
    let seed: u64 = opts.flag_or("seed", 0)?;
    let churn_links: usize = opts.flag_or("churn-links", 0)?;
    let mtbf: u64 = opts.flag_or("mtbf", 400)?;
    let mttr: u64 = opts.flag_or("mttr", 100)?;
    let churn_cycles: u64 = opts.flag_or("churn-cycles", 2_000)?;
    let inject: bool = opts.flag_or("inject", false)?;
    let inject_cycles: u64 = opts.flag_or("inject-cycles", 200)?;
    let queue_capacity: usize = opts.flag_or("queue-capacity", 2)?;
    let json: bool = opts.flag_or("json", false)?;
    if fail_tops > ft.m() {
        return Err(CliError::Usage(format!(
            "--fail-tops {fail_tops} exceeds the {} top switches",
            ft.m()
        )));
    }
    if !DEADLOCK_ROUTERS.contains(&router.as_str()) {
        return Err(CliError::Usage(format!(
            "unknown router `{router}` (one of {DEADLOCK_ROUTERS:?})"
        )));
    }

    let mut faults = FaultSet::new();
    for t in 0..fail_tops {
        faults.fail_switch(ft.top(t));
    }
    if fail_links > 0 {
        faults.merge(&FaultSet::random_links(ft.topology(), fail_links, seed));
    }
    let faulted = fail_tops > 0 || fail_links > 0;
    let view = FaultyView::new(ft.topology(), &faults);
    let view_opt = faulted.then_some(&view);

    let entries = analyze(&ft, &router, view_opt, rec)?;
    rec.gauge(
        "deadlock.cyclic_routers",
        entries.iter().filter(|e| !e.analysis.is_free()).count() as u64,
    );

    // Churn: re-prove every distinct fault epoch of a flapping schedule.
    let mut churn_epochs: Vec<(usize, Vec<SweepEntry>)> = Vec::new();
    if churn_links > 0 {
        let _s = rec.span("deadlock.churn");
        let schedule = ftclos_sim::ChurnSchedule::flapping_links(
            ft.topology(),
            churn_links,
            mtbf,
            mttr,
            churn_cycles,
            seed,
        );
        let events: Vec<ChurnEvent> = schedule
            .sorted_events()
            .iter()
            .map(|e| ChurnEvent::new(e.cycle, e.channel, e.transition))
            .collect();
        for fs in unique_churn_fault_sets(&events, churn_cycles) {
            let epoch_view = FaultyView::new(ft.topology(), &fs);
            let dead = epoch_view.num_dead_channels();
            let entries = analyze(&ft, &router, Some(&epoch_view), rec)?;
            churn_epochs.push((dead, entries));
        }
    }

    // Witness injection: reproduce the first cycle dynamically.
    let mut injection = None;
    if inject {
        let Some(cyclic) = entries.iter().find(|e| !e.analysis.is_free()) else {
            return Err(CliError::Failed(
                "--inject needs a witness cycle, but every analyzed routing is deadlock-free \
                 (try --router valley)"
                    .to_string(),
            ));
        };
        let DeadlockVerdict::Cyclic { witness } = &cyclic.analysis.verdict else {
            unreachable!("cyclic entry has a witness");
        };
        let _s = rec.span("deadlock.inject");
        let routes = witness_routes(&ft, cyclic.router, view_opt, witness);
        if routes.is_empty() {
            return Err(CliError::Failed(
                "witness attribution found no realizing routes".to_string(),
            ));
        }
        let run = run_pinned_injection_recorded(
            ft.topology(),
            &routes,
            inject_cycles,
            queue_capacity,
            seed,
            rec,
        )
        .map_err(|e| CliError::Failed(e.to_string()))?;
        // Control: the same pairs along up*/down* dmodk routes must drain.
        let dmodk = DModK::new(&ft);
        let control_routes: Vec<PinnedRoute> = routes
            .iter()
            .map(|r| {
                let path = dmodk.route(SdPair::new(r.src, r.dst));
                PinnedRoute::new(r.src, r.dst, path.channels().to_vec())
            })
            .collect();
        let control = run_pinned_injection_recorded(
            ft.topology(),
            &control_routes,
            inject_cycles,
            queue_capacity,
            seed,
            rec,
        )
        .map_err(|e| CliError::Failed(e.to_string()))?;
        injection = Some((cyclic.router, run, control));
    }

    if json {
        Ok(render_json(
            &ft,
            view.num_dead_channels(),
            &entries,
            &churn_epochs,
            injection.as_ref(),
        ))
    } else {
        Ok(render_text(
            &ft,
            faulted,
            view.num_dead_channels(),
            &entries,
            &churn_epochs,
            injection.as_ref(),
        ))
    }
}

/// Analyze one named router (or the whole sweep) against an optional fault
/// overlay.
fn analyze(
    ft: &Ftree,
    router: &str,
    view: Option<&FaultyView>,
    rec: &Registry,
) -> Result<Vec<SweepEntry>, CliError> {
    let topo = ft.topology();
    let single = |name: &'static str, r: &(dyn SinglePathRouter + Sync)| -> Vec<SweepEntry> {
        let g = match view {
            None => cdg_of_router_with(topo, r, rec),
            Some(v) => cdg_of_masked_router_with(r, v, rec),
        };
        vec![SweepEntry {
            router: name,
            analysis: g.check_with(rec),
        }]
    };
    match router {
        "all" => {
            // The full roster, plus the valley counterexample so default
            // output demonstrates both verdict shapes.
            let mut entries = deadlock_sweep_with(ft, view, rec);
            entries.extend(single("valley", &ValleyRouter::new(ft)));
            Ok(entries)
        }
        "yuan" => {
            let r = YuanDeterministic::new(ft).map_err(|e| CliError::Failed(e.to_string()))?;
            Ok(single("yuan", &r))
        }
        "dmodk" => Ok(single("dmodk", &DModK::new(ft))),
        "smodk" => Ok(single("smodk", &SModK::new(ft))),
        "valley" => Ok(single("valley", &ValleyRouter::new(ft))),
        "multipath" | "adaptive" => {
            // The adaptive candidate set equals the multipath branch union
            // (a sound over-approximation of every materializable plan).
            let g = cdg_of_multipath_with(ft, view, rec);
            Ok(vec![SweepEntry {
                router: if router == "multipath" {
                    "multipath"
                } else {
                    "adaptive"
                },
                analysis: g.check_with(rec),
            }])
        }
        other => Err(CliError::Usage(format!(
            "unknown router `{other}` (one of {DEADLOCK_ROUTERS:?})"
        ))),
    }
}

/// Turn a witness cycle into pinned SD routes for the router that produced
/// it. [`attribute_witness`] first proves every cycle edge is realized by a
/// concrete route (the static claim); the *injection* set is then chosen
/// per source — each source leaf pins the route that rides the most
/// consecutive witness-cycle adjacencies — so the pinned traffic wraps the
/// whole cycle and the credit wedge can close (a route per *edge* alone
/// leaves most sources idle after per-source deduplication).
pub(crate) fn witness_routes(
    ft: &Ftree,
    router: &str,
    view: Option<&FaultyView>,
    witness: &[ChannelId],
) -> Vec<PinnedRoute> {
    let alive = |path: &[ChannelId]| view.is_none_or(|v| v.path_alive(path).is_ok());
    let yuan;
    let dmodk;
    let smodk;
    let valley;
    let mp;
    let ports;
    let paths_of: PathsOf<'_> = match router {
        "multipath" | "adaptive" => {
            mp = ftclos_routing::ObliviousMultipath::new(
                ft,
                ftclos_routing::SpreadPolicy::RoundRobin,
            );
            ports = mp.ports();
            Box::new(move |pair, emit| {
                let mut branches = mp.paths(pair);
                branches.sort_unstable_by(|a, b| a.channels().cmp(b.channels()));
                for p in &branches {
                    if !p.channels().is_empty() && alive(p.channels()) {
                        emit(p.channels());
                    }
                }
            })
        }
        name => {
            let r: &dyn SinglePathRouter = match name {
                "yuan" => match YuanDeterministic::new(ft) {
                    Ok(v) => {
                        yuan = v;
                        &yuan
                    }
                    Err(_) => return Vec::new(),
                },
                "dmodk" => {
                    dmodk = DModK::new(ft);
                    &dmodk
                }
                "smodk" => {
                    smodk = SModK::new(ft);
                    &smodk
                }
                _ => {
                    valley = ValleyRouter::new(ft);
                    &valley
                }
            };
            ports = r.ports();
            Box::new(move |pair, emit| {
                let p = r.route(pair);
                if !p.channels().is_empty() && alive(p.channels()) {
                    emit(p.channels());
                }
            })
        }
    };
    // Static guard: every edge of the cycle must be realized by some route.
    let edges = attribute_witness(witness, ports, &paths_of);
    if edges.len() != witness.len() {
        return Vec::new();
    }
    // Per-source best cycle cover.
    let k = witness.len();
    let on_cycle: std::collections::HashSet<(ChannelId, ChannelId)> =
        (0..k).map(|i| (witness[i], witness[(i + 1) % k])).collect();
    let mut routes = Vec::new();
    for s in 0..ports {
        let mut best: Option<(usize, PinnedRoute)> = None;
        for d in 0..ports {
            if s == d {
                continue;
            }
            paths_of(SdPair::new(s, d), &mut |path: &[ChannelId]| {
                let cover = path
                    .windows(2)
                    .filter(|w| on_cycle.contains(&(w[0], w[1])))
                    .count();
                if cover > 0 && best.as_ref().is_none_or(|(c, _)| cover > *c) {
                    best = Some((cover, PinnedRoute::new(s, d, path.to_vec())));
                }
            });
        }
        if let Some((_, r)) = best {
            routes.push(r);
        }
    }
    routes
}

fn describe(analysis: &CycleAnalysis) -> String {
    match &analysis.verdict {
        DeadlockVerdict::Free => format!(
            "FREE ({} dependencies, {} valley turns)",
            analysis.num_deps, analysis.valley_turns
        ),
        DeadlockVerdict::Cyclic { witness } => {
            let cycle: Vec<String> = witness.iter().map(|c| c.to_string()).collect();
            format!(
                "CYCLIC ({} cyclic channels, {} dependencies) witness: {} -> {}",
                analysis.cyclic_channels,
                analysis.num_deps,
                cycle.join(" -> "),
                cycle[0]
            )
        }
    }
}

fn render_text(
    ft: &Ftree,
    faulted: bool,
    dead: usize,
    entries: &[SweepEntry],
    churn_epochs: &[(usize, Vec<SweepEntry>)],
    injection: Option<&(&'static str, WitnessRun, WitnessRun)>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "deadlock analysis on ftree({}+{}, {}): {}",
        ft.n(),
        ft.m(),
        ft.r(),
        if faulted {
            format!("{dead} dead channel(s)")
        } else {
            "pristine".to_string()
        }
    );
    for e in entries {
        let _ = writeln!(out, "  {:<9} {}", e.router, describe(&e.analysis));
    }
    for (i, (dead, entries)) in churn_epochs.iter().enumerate() {
        let cyclic: Vec<&str> = entries
            .iter()
            .filter(|e| !e.analysis.is_free())
            .map(|e| e.router)
            .collect();
        let _ = writeln!(
            out,
            "churn epoch set #{i} ({dead} dead): {}",
            if cyclic.is_empty() {
                format!("all {} router(s) deadlock-free", entries.len())
            } else {
                format!("CYCLIC for {}", cyclic.join(", "))
            }
        );
    }
    if let Some((router, run, control)) = injection {
        let s = &run.stats;
        let _ = writeln!(
            out,
            "witness injection ({router}): {} route(s) pinned -> {}",
            run.pinned_pairs,
            if run.wedged() {
                format!(
                    "WEDGED (credit stall): {} stranded of {} injected, {} delivered, \
                     conservation {}",
                    s.leftover_packets,
                    s.injected_total,
                    s.delivered_total,
                    if run.conservation_ok() {
                        "OK"
                    } else {
                        "BROKEN"
                    }
                )
            } else {
                format!(
                    "drained ({} delivered of {} injected)",
                    s.delivered_total, s.injected_total
                )
            }
        );
        let c = &control.stats;
        let _ = writeln!(
            out,
            "control (dmodk, same pairs): {}",
            if control.wedged() {
                format!("WEDGED ({} stranded)", c.leftover_packets)
            } else {
                format!(
                    "drained clean ({} delivered of {} injected, conservation {})",
                    c.delivered_total,
                    c.injected_total,
                    if control.conservation_ok() {
                        "OK"
                    } else {
                        "BROKEN"
                    }
                )
            }
        );
    }
    out
}

fn render_json(
    ft: &Ftree,
    dead: usize,
    entries: &[SweepEntry],
    churn_epochs: &[(usize, Vec<SweepEntry>)],
    injection: Option<&(&'static str, WitnessRun, WitnessRun)>,
) -> String {
    let entry_json = |e: &SweepEntry| {
        let witness = match &e.analysis.verdict {
            DeadlockVerdict::Free => String::from("[]"),
            DeadlockVerdict::Cyclic { witness } => {
                let ids: Vec<String> = witness.iter().map(|c| c.index().to_string()).collect();
                format!("[{}]", ids.join(","))
            }
        };
        format!(
            "{{\"router\":\"{}\",\"free\":{},\"num_deps\":{},\"valley_turns\":{},\
             \"cyclic_channels\":{},\"witness\":{}}}",
            e.router,
            e.analysis.is_free(),
            e.analysis.num_deps,
            e.analysis.valley_turns,
            e.analysis.cyclic_channels,
            witness
        )
    };
    let entries_json: Vec<String> = entries.iter().map(entry_json).collect();
    let churn_json: Vec<String> = churn_epochs
        .iter()
        .map(|(dead, entries)| {
            let inner: Vec<String> = entries.iter().map(entry_json).collect();
            format!(
                "{{\"dead_channels\":{dead},\"entries\":[{}]}}",
                inner.join(",")
            )
        })
        .collect();
    let injection_json = match injection {
        None => String::from("null"),
        Some((router, run, control)) => {
            let s = &run.stats;
            let c = &control.stats;
            format!(
                "{{\"router\":\"{router}\",\"pinned\":{},\"wedged\":{},\"injected\":{},\
                 \"delivered\":{},\"abandoned\":{},\"leftover\":{},\"conservation_ok\":{},\
                 \"control_wedged\":{},\"control_delivered\":{},\"control_leftover\":{}}}",
                run.pinned_pairs,
                run.wedged(),
                s.injected_total,
                s.delivered_total,
                s.abandoned_total,
                s.leftover_packets,
                run.conservation_ok(),
                control.wedged(),
                c.delivered_total,
                c.leftover_packets
            )
        }
    };
    format!(
        "{{\"fabric\":{{\"n\":{},\"m\":{},\"r\":{}}},\"dead_channels\":{dead},\
         \"entries\":[{}],\"churn_epochs\":[{}],\"injection\":{}}}",
        ft.n(),
        ft.m(),
        ft.r(),
        entries_json.join(","),
        churn_json.join(","),
        injection_json
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn pristine_sweep_proves_freedom_and_catches_valley() {
        let reg = Registry::new();
        let out = run(&argv("2 4 5"), &reg).unwrap();
        for router in ["yuan", "dmodk", "smodk", "multipath", "adaptive"] {
            let line = out
                .lines()
                .find(|l| l.trim_start().starts_with(router))
                .unwrap_or_else(|| panic!("no line for {router}: {out}"));
            assert!(line.contains("FREE"), "{line}");
            assert!(line.contains("0 valley turns"), "{line}");
        }
        assert!(out.contains("valley    CYCLIC"), "{out}");
        assert!(out.contains("witness: c"), "{out}");
        let snap = reg.snapshot();
        for span in ["cdg.build", "cdg.scc"] {
            assert!(snap.spans.iter().any(|s| s.path == span), "missing {span}");
        }
    }

    #[test]
    fn faulted_sweep_still_proves_freedom() {
        let out = run(
            &argv("2 4 5 --fail-tops 1 --fail-links 2 --seed 3"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("dead channel(s)"), "{out}");
        assert!(out.contains("dmodk     FREE"), "{out}");
    }

    #[test]
    fn churn_epochs_are_all_free_for_dmodk() {
        let out = run(
            &argv("2 4 3 --router dmodk --churn-links 2 --mtbf 200 --mttr 60 --churn-cycles 800"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("churn epoch set #0"), "{out}");
        assert!(out.contains("deadlock-free"), "{out}");
        assert!(!out.contains("CYCLIC for"), "{out}");
    }

    #[test]
    fn injection_wedges_valley_and_control_drains() {
        let reg = Registry::new();
        let out = run(
            &argv("1 1 4 --router valley --inject true --inject-cycles 200"),
            &reg,
        )
        .unwrap();
        assert!(out.contains("WEDGED (credit stall)"), "{out}");
        assert!(out.contains("conservation OK"), "{out}");
        assert!(
            out.contains("control (dmodk, same pairs): drained clean"),
            "{out}"
        );
        let snap = reg.snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "deadlock.inject"));
    }

    #[test]
    fn inject_on_free_routing_is_an_error() {
        assert!(run(&argv("2 4 5 --router yuan --inject true"), &Registry::new()).is_err());
    }

    #[test]
    fn json_shape() {
        let out = run(
            &argv("1 1 4 --router valley --json true --inject true"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.starts_with('{'), "{out}");
        assert!(
            out.contains("\"router\":\"valley\",\"free\":false"),
            "{out}"
        );
        assert!(out.contains("\"wedged\":true"), "{out}");
        assert!(out.contains("\"conservation_ok\":true"), "{out}");
        assert!(out.contains("\"control_wedged\":false"), "{out}");
    }

    #[test]
    fn bad_router_rejected() {
        assert!(run(&argv("2 4 5 --router bogus"), &Registry::new()).is_err());
    }
}
