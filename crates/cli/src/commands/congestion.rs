//! `ftclos congestion <n> <m> <r> [--mode greedy|rounded|repaired]
//! [--pattern P] [--seed S] [--trials N] [--fail-tops K] [--fail-links K]
//! [--churn-links K --mtbf N --mttr N --churn-cycles N] [--json]` — the
//! min-congestion router family head-to-head against every baseline.
//!
//! For each pattern (the standard adversarial suite, or just `--pattern`),
//! every baseline router places the pattern and the min-congestion solver
//! plans it — warm-started from whichever baseline assignments project
//! into its candidate set, so the repaired plan is never worse than a
//! projectable baseline. Each row reports the exact max link load (via the
//! core engine's epoch-stamped load scratch), the deterministic lowest-id
//! witness channel carrying it, and the fluid max-min worst flow rate.
//! With faults, baselines route through their fault-masked variants (the
//! deterministic ones simply become unroutable — the paper's single-path
//! story) while the solver plans over the surviving candidate set. With
//! `--churn-links`, every distinct fault epoch of the flap schedule is
//! replayed as a repaired-vs-dmodk comparison.

use super::common::{build_ftree, make_pattern};
use crate::opts::{CliError, Opts};
use ftclos_core::cdg::unique_churn_fault_sets;
use ftclos_core::churn::ChurnEvent;
use ftclos_core::ContentionScratch;
use ftclos_flowsim::{solve_pattern_with, standard_suite};
use ftclos_obs::Registry;
use ftclos_routing::{
    route_all, CongestionConfig, CongestionMode, DModK, FaultAware, FtreeCandidates, LinkLoadView,
    MaskedAdaptive, MaskedMultipath, MinCongestion, NonblockingAdaptive, ObliviousMultipath,
    PatternRouter, PlanStrategy, RouteAssignment, SModK, SpreadPolicy, YuanDeterministic,
};
use ftclos_topo::{ChannelCapacities, ChannelId, FaultSet, FaultyView, Ftree};
use ftclos_traffic::Permutation;
use std::fmt::Write as _;

/// One head-to-head line: a router's placement of one pattern.
struct Row {
    router: String,
    /// Exact unsplittable max link load (single-path placements).
    max_load: Option<u32>,
    /// Fractional max expected load (the oblivious multipath spread).
    expected: Option<f64>,
    /// Lowest-id channel carrying the max load.
    witness: Option<ChannelId>,
    /// Fluid max-min worst flow rate, when the solve succeeds.
    worst_rate: Option<f64>,
    /// Solver statistics (congestion rows only).
    moves_rounds: Option<(u64, u64)>,
    /// Why the router could not place the pattern.
    err: Option<String>,
}

impl Row {
    fn unroutable(router: &str, err: String) -> Self {
        Self {
            router: router.to_string(),
            max_load: None,
            expected: None,
            witness: None,
            worst_rate: None,
            moves_rounds: None,
            err: Some(err),
        }
    }
}

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let mode = match opts.flag_or("mode", "repaired".to_string())?.as_str() {
        "greedy" => CongestionMode::Greedy,
        "rounded" => CongestionMode::Rounded,
        "repaired" => CongestionMode::Repaired,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --mode `{other}` (one of greedy, rounded, repaired)"
            )))
        }
    };
    let seed: u64 = opts.flag_or("seed", 0)?;
    let trials: u32 = opts.flag_or("trials", 4)?;
    let fail_tops: usize = opts.flag_or("fail-tops", 0)?;
    let fail_links: usize = opts.flag_or("fail-links", 0)?;
    let churn_links: usize = opts.flag_or("churn-links", 0)?;
    let mtbf: u64 = opts.flag_or("mtbf", 400)?;
    let mttr: u64 = opts.flag_or("mttr", 100)?;
    let churn_cycles: u64 = opts.flag_or("churn-cycles", 2000)?;
    let json: bool = opts.flag_or("json", false)?;
    if fail_tops > ft.m() {
        return Err(CliError::Usage(format!(
            "--fail-tops {fail_tops} exceeds the {} top switches",
            ft.m()
        )));
    }
    let config = CongestionConfig {
        mode,
        seed,
        rounding_trials: trials.max(1),
        ..CongestionConfig::default()
    };

    let ports = ft.num_leaves() as u32;
    let suite: Vec<(String, Permutation)> = match opts.flag("pattern") {
        Some(spec) => vec![(spec.to_string(), make_pattern(spec, ports, seed)?)],
        None => standard_suite(ports),
    };
    let caps = ChannelCapacities::unit(ft.topology());

    let faulted = fail_tops > 0 || fail_links > 0;
    let mut faults = FaultSet::new();
    for t in 0..fail_tops {
        faults.fail_switch(ft.top(t));
    }
    if fail_links > 0 {
        faults.merge(&FaultSet::random_links(ft.topology(), fail_links, seed));
    }
    let view = FaultyView::new(ft.topology(), &faults);

    let mut scratch = ContentionScratch::default();
    let mut pattern_tables: Vec<(String, usize, Vec<Row>)> = Vec::new();
    for (pname, perm) in &suite {
        let rows = head_to_head(
            &ft,
            &view,
            faulted,
            config,
            pname,
            perm,
            &caps,
            &mut scratch,
            rec,
        );
        pattern_tables.push((pname.clone(), perm.len(), rows));
    }

    // Churn epochs: repaired solver vs fault-aware d-mod-k on each distinct
    // surviving-hardware epoch of the flap schedule.
    let mut churn_epochs: Vec<(usize, Row, Row)> = Vec::new();
    let churn_pattern = opts.flag("pattern").unwrap_or("shift:1").to_string();
    if churn_links > 0 {
        let perm = make_pattern(&churn_pattern, ports, seed)?;
        let schedule = ftclos_sim::ChurnSchedule::flapping_links(
            ft.topology(),
            churn_links,
            mtbf,
            mttr,
            churn_cycles,
            seed,
        );
        let events: Vec<ChurnEvent> = schedule
            .sorted_events()
            .iter()
            .map(|e| ChurnEvent::new(e.cycle, e.channel, e.transition))
            .collect();
        for fs in unique_churn_fault_sets(&events, churn_cycles) {
            let epoch_view = FaultyView::new(ft.topology(), &fs);
            let dead = epoch_view.num_dead_channels();
            let cong = congestion_row(&ft, Some(&epoch_view), config, &perm, &mut scratch, rec);
            let dmodk =
                match FaultAware::new(DModK::new(&ft), &epoch_view).route_pattern_checked(&perm) {
                    Ok(a) => exact_row("dmodk", &a, None, &mut scratch),
                    Err(e) => Row::unroutable("dmodk", e.to_string()),
                };
            churn_epochs.push((dead, cong, dmodk));
        }
    }

    if json {
        return Ok(render_json(
            &ft,
            config,
            seed,
            faulted,
            view.num_dead_channels(),
            &pattern_tables,
            &churn_pattern,
            &churn_epochs,
        ));
    }
    render_text(
        &ft,
        config,
        seed,
        faulted,
        view.num_dead_channels(),
        &pattern_tables,
        &churn_pattern,
        &churn_epochs,
    )
}

/// All baselines plus the congestion solver on one pattern.
#[allow(clippy::too_many_arguments)]
fn head_to_head(
    ft: &Ftree,
    view: &FaultyView<'_>,
    faulted: bool,
    config: CongestionConfig,
    pname: &str,
    perm: &Permutation,
    caps: &ChannelCapacities,
    scratch: &mut ContentionScratch,
    rec: &Registry,
) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    let mut seeds: Vec<RouteAssignment> = Vec::new();

    // Single-path deterministic baselines.
    match YuanDeterministic::new(ft) {
        Err(e) => rows.push(Row::unroutable("yuan", e.to_string())),
        Ok(yuan) => {
            let (asg, rate) = if faulted {
                let fa = FaultAware::new(yuan, view);
                (
                    fa.route_pattern_checked(perm).map_err(|e| e.to_string()),
                    fluid_rate(&fa, pname, perm, caps, rec),
                )
            } else {
                (
                    route_all(&yuan, perm).map_err(|e| e.to_string()),
                    fluid_rate(&yuan, pname, perm, caps, rec),
                )
            };
            rows.push(finish_exact("yuan", asg, rate, scratch, &mut seeds));
        }
    }
    {
        let dmodk = DModK::new(ft);
        let (asg, rate) = if faulted {
            let fa = FaultAware::new(dmodk, view);
            (
                fa.route_pattern_checked(perm).map_err(|e| e.to_string()),
                fluid_rate(&fa, pname, perm, caps, rec),
            )
        } else {
            (
                route_all(&dmodk, perm).map_err(|e| e.to_string()),
                fluid_rate(&dmodk, pname, perm, caps, rec),
            )
        };
        rows.push(finish_exact("dmodk", asg, rate, scratch, &mut seeds));
    }
    {
        let smodk = SModK::new(ft);
        let (asg, rate) = if faulted {
            let fa = FaultAware::new(smodk, view);
            (
                fa.route_pattern_checked(perm).map_err(|e| e.to_string()),
                fluid_rate(&fa, pname, perm, caps, rec),
            )
        } else {
            (
                route_all(&smodk, perm).map_err(|e| e.to_string()),
                fluid_rate(&smodk, pname, perm, caps, rec),
            )
        };
        rows.push(finish_exact("smodk", asg, rate, scratch, &mut seeds));
    }

    // NONBLOCKINGADAPTIVE: exact on pristine fabrics, fractional flow-link
    // loads through the masked planner on faulted ones.
    match NonblockingAdaptive::new(ft) {
        Err(e) => rows.push(Row::unroutable("adaptive", e.to_string())),
        Ok(ad) => {
            if faulted {
                let masked = MaskedAdaptive::new(&ad, view, PlanStrategy::GreedyLargestSubset);
                rows.push(flow_links_row("adaptive", &masked, pname, perm, caps, rec));
            } else {
                let asg = ad.route_pattern(perm).map_err(|e| e.to_string());
                let rate = fluid_rate(&ad, pname, perm, caps, rec);
                rows.push(finish_exact("adaptive", asg, rate, scratch, &mut seeds));
            }
        }
    }

    // Oblivious multipath: the fractional 1/m spread.
    {
        let mp = ObliviousMultipath::new(ft, SpreadPolicy::RoundRobin);
        if faulted {
            let masked = MaskedMultipath::new(mp, view);
            rows.push(flow_links_row("multipath", &masked, pname, perm, caps, rec));
        } else {
            rows.push(flow_links_row("multipath", &mp, pname, perm, caps, rec));
        }
    }

    // The min-congestion solver, warm-started from every baseline
    // assignment that projects into its candidate set.
    let seed_refs: Vec<&RouteAssignment> = seeds.iter().collect();
    let cands = if faulted {
        FtreeCandidates::masked(ft, view)
    } else {
        FtreeCandidates::pristine(ft)
    };
    let router = MinCongestion::with_config(cands, config);
    match router.plan_seeded_with(perm, &seed_refs, rec) {
        Err(e) => rows.push(Row::unroutable(config.mode.name(), e.to_string())),
        Ok(plan) => {
            let rate = fluid_rate(&plan.load_view(), pname, perm, caps, rec);
            let mut row = exact_row(config.mode.name(), &plan.assignment(), rate, scratch);
            row.moves_rounds = Some((plan.moves(), plan.rounds()));
            rows.push(row);
        }
    }
    rows
}

/// The congestion solver alone (churn epochs).
fn congestion_row(
    ft: &Ftree,
    view: Option<&FaultyView<'_>>,
    config: CongestionConfig,
    perm: &Permutation,
    scratch: &mut ContentionScratch,
    rec: &Registry,
) -> Row {
    let cands = match view {
        Some(v) => FtreeCandidates::masked(ft, v),
        None => FtreeCandidates::pristine(ft),
    };
    let router = MinCongestion::with_config(cands, config);
    match router.plan_seeded_with(perm, &[], rec) {
        Err(e) => Row::unroutable(config.mode.name(), e.to_string()),
        Ok(plan) => {
            let mut row = exact_row(config.mode.name(), &plan.assignment(), None, scratch);
            row.moves_rounds = Some((plan.moves(), plan.rounds()));
            row
        }
    }
}

fn fluid_rate<V: LinkLoadView + ?Sized>(
    view: &V,
    pname: &str,
    perm: &Permutation,
    caps: &ChannelCapacities,
    rec: &Registry,
) -> Option<f64> {
    solve_pattern_with(view, pname, perm, caps, rec)
        .ok()
        .map(|r| r.worst_rate)
}

/// Row from an exact single-path assignment: the core engine's scratch
/// gives the max load and its deterministic lowest-id witness.
fn exact_row(
    name: &str,
    asg: &RouteAssignment,
    worst_rate: Option<f64>,
    scratch: &mut ContentionScratch,
) -> Row {
    let (witness, max_load) = match scratch.max_load_witness(asg) {
        Some((w, m)) => (Some(w), m),
        None => (None, 0),
    };
    Row {
        router: name.to_string(),
        max_load: Some(max_load),
        expected: None,
        witness,
        worst_rate,
        moves_rounds: None,
        err: None,
    }
}

fn finish_exact(
    name: &str,
    asg: Result<RouteAssignment, String>,
    worst_rate: Option<f64>,
    scratch: &mut ContentionScratch,
    seeds: &mut Vec<RouteAssignment>,
) -> Row {
    match asg {
        Ok(a) => {
            let row = exact_row(name, &a, worst_rate, scratch);
            seeds.push(a);
            row
        }
        Err(e) => Row::unroutable(name, e),
    }
}

/// Row from fractional flow links (multipath spreads, masked adaptive):
/// per-channel summed weights, max + lowest-id argmax.
fn flow_links_row<V: LinkLoadView + ?Sized>(
    name: &str,
    view: &V,
    pname: &str,
    perm: &Permutation,
    caps: &ChannelCapacities,
    rec: &Registry,
) -> Row {
    let flows = match view.flow_links(perm) {
        Ok(f) => f,
        Err(e) => return Row::unroutable(name, e.to_string()),
    };
    let mut loads: std::collections::HashMap<ChannelId, f64> = std::collections::HashMap::new();
    for f in &flows {
        for &(c, w) in &f.links {
            *loads.entry(c).or_insert(0.0) += w;
        }
    }
    let max = loads.values().fold(0.0f64, |a, &b| a.max(b));
    let witness = loads
        .iter()
        .filter(|(_, &l)| (l - max).abs() < 1e-9)
        .map(|(&c, _)| c)
        .min();
    Row {
        router: name.to_string(),
        max_load: None,
        expected: Some(max),
        witness: if max > 0.0 { witness } else { None },
        worst_rate: fluid_rate(view, pname, perm, caps, rec),
        moves_rounds: None,
        err: None,
    }
}

/// `true` when the congestion row is no worse than every routable
/// *unsplittable* baseline of its table. The fractional multipath spread is
/// reported but not compared: a `1/m` split's expected load lower-bounds
/// what any single-path placement can achieve, so it is not a peer.
fn table_verdict(rows: &[Row]) -> bool {
    let Some(cong) = rows.last().and_then(|r| r.max_load) else {
        return false;
    };
    rows[..rows.len() - 1]
        .iter()
        .filter_map(|r| r.max_load)
        .all(|base| cong <= base)
}

#[allow(clippy::too_many_arguments)]
fn render_text(
    ft: &Ftree,
    config: CongestionConfig,
    seed: u64,
    faulted: bool,
    dead_channels: usize,
    tables: &[(String, usize, Vec<Row>)],
    churn_pattern: &str,
    churn: &[(usize, Row, Row)],
) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "min-congestion head-to-head: ftree({}+{}, {}), {} hosts, mode {}, seed {}{}",
        ft.n(),
        ft.m(),
        ft.r(),
        ft.num_leaves(),
        config.mode.name(),
        seed,
        if faulted {
            format!(" (fault-masked, {dead_channels} dead channel(s))")
        } else {
            String::new()
        }
    );
    let mut all_ok = true;
    for (pname, flows, rows) in tables {
        let _ = writeln!(out, "\npattern {pname} ({flows} flows)");
        let _ = writeln!(
            out,
            "  {:<22} {:>9} {:>8} {:>11}",
            "router", "max-load", "witness", "worst-rate"
        );
        for row in rows {
            let _ = writeln!(out, "  {}", row_text(row));
        }
        if !table_verdict(rows) {
            all_ok = false;
        }
    }
    let _ = writeln!(
        out,
        "\nverdict: {}",
        if all_ok {
            "min-congestion routing matched or beat every routable baseline"
        } else {
            "REGRESSION: some baseline beat the min-congestion placement"
        }
    );
    if !churn.is_empty() {
        let _ = writeln!(
            out,
            "\nchurn ({} epoch(s), pattern {churn_pattern}):",
            churn.len()
        );
        for (i, (dead, cong, dmodk)) in churn.iter().enumerate() {
            let _ = writeln!(
                out,
                "  epoch {i}: {dead} dead channel(s)  {}  vs  {}",
                churn_cell(cong),
                churn_cell(dmodk)
            );
        }
    }
    Ok(out)
}

fn row_text(row: &Row) -> String {
    if let Some(e) = &row.err {
        return format!("{:<22} unroutable: {e}", row.router);
    }
    let load = match (row.max_load, row.expected) {
        (Some(m), _) => format!("{m}"),
        (None, Some(x)) => format!("{x:.3}"),
        (None, None) => "-".to_string(),
    };
    let witness = row
        .witness
        .map(|c| format!("ch{}", c.index()))
        .unwrap_or_else(|| "-".to_string());
    let rate = row
        .worst_rate
        .map(|r| format!("{r:.4}"))
        .unwrap_or_else(|| "-".to_string());
    let extra = row
        .moves_rounds
        .map(|(m, r)| format!("  moves={m} rounds={r}"))
        .unwrap_or_default();
    format!(
        "{:<22} {load:>9} {witness:>8} {rate:>11}{extra}",
        row.router
    )
}

fn churn_cell(row: &Row) -> String {
    match (&row.err, row.max_load) {
        (Some(_), _) => format!("{} unroutable", row.router),
        (None, Some(m)) => format!("{} max-load {m}", row.router),
        (None, None) => format!("{} -", row.router),
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    ft: &Ftree,
    config: CongestionConfig,
    seed: u64,
    faulted: bool,
    dead_channels: usize,
    tables: &[(String, usize, Vec<Row>)],
    churn_pattern: &str,
    churn: &[(usize, Row, Row)],
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"command\":\"congestion\",\"n\":{},\"m\":{},\"r\":{},\"hosts\":{},\
         \"mode\":{},\"seed\":{seed},\"faulted\":{faulted},\"dead_channels\":{dead_channels},\
         \"patterns\":[",
        ft.n(),
        ft.m(),
        ft.r(),
        ft.num_leaves(),
        json_string(config.mode.name()),
    );
    for (i, (pname, flows, rows)) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"pattern\":{},\"flows\":{flows},\"congestion_ok\":{},\"rows\":[",
            json_string(pname),
            table_verdict(rows)
        );
        for (j, row) in rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&row_json(row));
        }
        out.push_str("]}");
    }
    out.push(']');
    if !churn.is_empty() {
        let _ = write!(
            out,
            ",\"churn_pattern\":{},\"churn\":[",
            json_string(churn_pattern)
        );
        for (i, (dead, cong, dmodk)) in churn.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"epoch\":{i},\"dead_channels\":{dead},\"congestion\":{},\"dmodk\":{}}}",
                row_json(cong),
                row_json(dmodk)
            );
        }
        out.push(']');
    }
    out.push('}');
    out
}

fn row_json(row: &Row) -> String {
    let mut out = format!("{{\"router\":{}", json_string(&row.router));
    if let Some(e) = &row.err {
        let _ = write!(out, ",\"error\":{}", json_string(e));
        out.push('}');
        return out;
    }
    if let Some(m) = row.max_load {
        let _ = write!(out, ",\"max_load\":{m}");
    }
    if let Some(x) = row.expected {
        let _ = write!(out, ",\"expected_max_load\":{x:.6}");
    }
    if let Some(w) = row.witness {
        let _ = write!(out, ",\"witness_channel\":{}", w.index());
    }
    if let Some(r) = row.worst_rate {
        let _ = write!(out, ",\"worst_rate\":{r:.6}");
    }
    if let Some((m, r)) = row.moves_rounds {
        let _ = write!(out, ",\"moves\":{m},\"rounds\":{r}");
    }
    out.push('}');
    out
}

/// Minimal JSON string escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn pristine_head_to_head_beats_or_matches_everyone() {
        let reg = Registry::new();
        let out = run(&argv("2 4 5"), &reg).unwrap();
        assert!(
            out.contains("matched or beat every routable baseline"),
            "{out}"
        );
        assert!(out.contains("congestion-repaired"), "{out}");
        assert!(out.contains("yuan"), "{out}");
        assert!(out.contains("multipath"), "{out}");
        let snap = reg.snapshot();
        assert!(snap.spans.iter().any(|s| s.path == "congestion.place"));
        assert!(snap.spans.iter().any(|s| s.path == "congestion.repair"));
        assert!(snap.counter("congestion.rounds").is_some());
    }

    #[test]
    fn undersized_fabric_still_no_worse_than_baselines() {
        // m < n²: every deterministic baseline collides on random; the
        // warm-started solver must stay at or below each.
        let out = run(&argv("2 2 5 --pattern random --seed 3"), &Registry::new()).unwrap();
        assert!(
            out.contains("matched or beat every routable baseline"),
            "{out}"
        );
    }

    #[test]
    fn faulted_fabric_solver_routes_where_yuan_cannot() {
        let out = run(
            &argv("2 4 5 --fail-tops 1 --pattern shift:2"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("fault-masked"), "{out}");
        // Yuan pins shift:2's (0,0) pairs to the dead top.
        assert!(out.contains("yuan") && out.contains("unroutable"), "{out}");
        assert!(out.contains("congestion-repaired"), "{out}");
        assert!(
            out.contains("matched or beat every routable baseline"),
            "{out}"
        );
    }

    #[test]
    fn json_is_emitted_and_structured() {
        let out = run(
            &argv("2 4 5 --pattern shift:3 --json true"),
            &Registry::new(),
        )
        .unwrap();
        assert!(
            out.starts_with('{') && out.trim_end().ends_with('}'),
            "{out}"
        );
        assert!(out.contains("\"command\":\"congestion\""), "{out}");
        assert!(out.contains("\"router\":\"congestion-repaired\""), "{out}");
        assert!(out.contains("\"congestion_ok\":true"), "{out}");
        assert!(out.contains("\"witness_channel\":"), "{out}");
    }

    #[test]
    fn churn_epochs_are_reported() {
        let out = run(
            &argv(
                "2 4 5 --churn-links 2 --mtbf 300 --mttr 80 --churn-cycles 900 --pattern shift:1",
            ),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("churn ("), "{out}");
        assert!(out.contains("epoch 0:"), "{out}");
        assert!(out.contains("congestion-repaired max-load"), "{out}");
    }

    #[test]
    fn modes_dispatch_and_bad_inputs_are_usage_errors() {
        for mode in ["greedy", "rounded", "repaired"] {
            let out = run(
                &argv(&format!("2 4 5 --mode {mode} --pattern tornado")),
                &Registry::new(),
            )
            .unwrap();
            assert!(out.contains(&format!("congestion-{mode}")), "{out}");
        }
        assert!(matches!(
            run(&argv("2 4 5 --mode warp"), &Registry::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("2 4 5 --fail-tops 99"), &Registry::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv("2 4 5 --pattern nope"), &Registry::new()),
            Err(CliError::Usage(_))
        ));
    }
}
