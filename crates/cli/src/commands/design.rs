//! `ftclos design <radix>` — what can you build from one switch size?

use crate::opts::{CliError, Opts};
use ftclos_analysis::TextTable;
use ftclos_core::design;
use ftclos_obs::Registry;

/// Run the command.
pub fn run(opts: &Opts, _rec: &Registry) -> Result<String, CliError> {
    let radix = opts.pos_usize(0, "radix")?;
    let mut table = TextTable::new(["design", "ports", "switches", "sw/port", "guarantee"]);
    if let Some(d) = design::nonblocking_two_level(radix) {
        table.row([
            format!("nonblocking 2-level (n={})", d.n),
            d.ports.to_string(),
            d.switches.to_string(),
            format!("{:.3}", d.switches_per_port()),
            "any permutation, zero contention".into(),
        ]);
    }
    if let Some(d) = design::nonblocking_three_level(radix) {
        table.row([
            format!("nonblocking 3-level (n={})", d.n),
            d.ports.to_string(),
            d.switches.to_string(),
            format!("{:.3}", d.switches_per_port()),
            "any permutation, zero contention".into(),
        ]);
    }
    if let Some(d) = design::mport_two_tree(radix) {
        table.row([
            format!("FT({radix},2) 2-tree"),
            d.ports.to_string(),
            d.switches.to_string(),
            format!("{:.3}", d.switches_per_port()),
            "rearrangeable only".into(),
        ]);
    }
    if table.is_empty() {
        return Err(CliError::Failed(format!(
            "radix {radix} is too small for any construction"
        )));
    }
    Ok(format!(
        "designs from {radix}-port switches:\n{}",
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designs_for_20_port() {
        let opts = Opts::parse(&["20".to_string()]).unwrap();
        let out = run(&opts, &Registry::new()).unwrap();
        assert!(out.contains("80"));
        assert!(out.contains("200"));
        assert!(out.contains("3-level"));
    }

    #[test]
    fn radix_too_small() {
        let opts = Opts::parse(&["1".to_string()]).unwrap();
        assert!(run(&opts, &Registry::new()).is_err());
    }
}
