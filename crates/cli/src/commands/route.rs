//! `ftclos route <n> <m> <r> [--router R] [--pattern P] [--seed S]` —
//! route one pattern and report link loads.

use super::common::{build_ftree, make_pattern, route_named};
use crate::opts::{CliError, Opts};
use ftclos_core::flow;
use ftclos_obs::{Recorder as _, Registry};
use std::fmt::Write as _;

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let router = opts.flag("router").unwrap_or("yuan");
    let seed: u64 = opts.flag_or("seed", 0)?;
    let spec = opts.flag("pattern").unwrap_or("random");
    let perm = make_pattern(spec, ft.num_leaves() as u32, seed)?;
    let assignment = {
        let _s = rec.span("route.assign");
        route_named(&ft, router, &perm)?
    };
    rec.add("route.pairs", assignment.len() as u64);
    let stats = flow::load_stats(&assignment);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "routed {} SD pairs of `{spec}` on ftree({}+{}, {}) with `{router}`:",
        assignment.len(),
        ft.n(),
        ft.m(),
        ft.r()
    );
    let _ = writeln!(
        out,
        "  max channel load = {} ({})",
        stats.max,
        if stats.max <= 1 {
            "contention-free"
        } else {
            "CONTENTION"
        }
    );
    let _ = writeln!(
        out,
        "  channels used = {}, mean load = {:.3}",
        stats.used_channels, stats.mean
    );
    let _ = writeln!(
        out,
        "  flow-level saturation throughput = {:.1}%",
        100.0 * flow::saturation_throughput(&assignment)
    );
    let tops = assignment.tops_used(ft.topology());
    let _ = writeln!(out, "  top-level switches used = {}", tops.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn yuan_contention_free() {
        let out = run(&argv("2 4 5 --pattern shift:3"), &Registry::new()).unwrap();
        assert!(out.contains("max channel load = 1"));
        assert!(out.contains("100.0%"));
    }

    #[test]
    fn dmodk_can_contend() {
        let reg = Registry::new();
        let out = run(
            &argv("3 2 7 --router dmodk --pattern random --seed 5"),
            &reg,
        )
        .unwrap();
        assert!(out.contains("routed"));
        assert!(reg.snapshot().counter("route.pairs").unwrap_or(0) > 0);
    }

    #[test]
    fn adaptive_reports_tops() {
        let out = run(
            &argv("2 16 4 --router adaptive --pattern random"),
            &Registry::new(),
        )
        .unwrap();
        assert!(out.contains("top-level switches used"));
        assert!(out.contains("contention-free"));
    }
}
