//! `ftclos verify <n> <m> <r> [--router R]` — complete Lemma 1 audit.

use super::common::build_ftree;
use crate::opts::{CliError, Opts};
use ftclos_core::ContentionEngine;
use ftclos_obs::Registry;
use ftclos_routing::{DModK, SModK, SinglePathRouter, YuanDeterministic};
use std::fmt::Write as _;

fn audit_router<R: SinglePathRouter>(router: &R, rec: &Registry) -> Result<String, CliError> {
    let engine =
        ContentionEngine::new_with(router, rec).map_err(|e| CliError::Failed(e.to_string()))?;
    let mut out = String::new();
    match engine.lemma1_violation_with(rec) {
        None => {
            let _ = writeln!(
                out,
                "NONBLOCKING: every link carries one source or one destination \
                 across all SD pairs (Lemma 1)"
            );
        }
        Some(v) => {
            let _ = writeln!(
                out,
                "BLOCKING: link {} carries multiple sources AND destinations",
                v.channel
            );
            let _ = writeln!(
                out,
                "  witness permutation: ({} -> {}) and ({} -> {}) contend",
                v.sources[0], v.destinations[0], v.sources[1], v.destinations[1]
            );
        }
    }
    Ok(out)
}

/// Run the command.
pub fn run(opts: &Opts, rec: &Registry) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let name = opts.flag("router").unwrap_or("yuan");
    let body = match name {
        "yuan" => {
            let router =
                YuanDeterministic::new(&ft).map_err(|e| CliError::Failed(e.to_string()))?;
            audit_router(&router, rec)?
        }
        "dmodk" => audit_router(&DModK::new(&ft), rec)?,
        "smodk" => audit_router(&SModK::new(&ft), rec)?,
        other => {
            return Err(CliError::Usage(format!(
                "verify supports deterministic routers only (yuan|dmodk|smodk), got `{other}`"
            )))
        }
    };
    Ok(format!(
        "audit of ftree({}+{}, {}) under `{name}` routing:\n{body}",
        ft.n(),
        ft.m(),
        ft.r()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn yuan_passes() {
        let out = run(&argv("2 4 5"), &Registry::new()).unwrap();
        assert!(out.contains("NONBLOCKING"));
    }

    #[test]
    fn dmodk_blocks_with_witness() {
        let out = run(&argv("2 2 5 --router dmodk"), &Registry::new()).unwrap();
        assert!(out.contains("BLOCKING"));
        assert!(out.contains("witness permutation"));
    }

    #[test]
    fn yuan_rejects_small_m() {
        assert!(run(&argv("2 3 5"), &Registry::new()).is_err());
    }

    #[test]
    fn adaptive_not_supported_here() {
        assert!(run(&argv("2 4 5 --router adaptive"), &Registry::new()).is_err());
    }

    #[test]
    fn audit_records_engine_spans() {
        let reg = Registry::new();
        run(&argv("2 4 5"), &reg).unwrap();
        let snap = reg.snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"arena.build"), "{paths:?}");
        assert!(paths.contains(&"engine.census"), "{paths:?}");
        assert!(paths.contains(&"engine.scan"), "{paths:?}");
        assert!(snap.counter("engine.channels_scanned").unwrap_or(0) > 0);
    }
}
