//! `ftclos verify <n> <m> <r> [--router R]` — complete Lemma 1 audit.

use super::common::build_ftree;
use crate::opts::{CliError, Opts};
use ftclos_core::verify::LinkAudit;
use ftclos_routing::{DModK, SModK, SinglePathRouter, YuanDeterministic};
use std::fmt::Write as _;

fn audit_router<R: SinglePathRouter>(router: &R) -> String {
    let audit = LinkAudit::build(router);
    let mut out = String::new();
    match audit.lemma1_check(router) {
        Ok(()) => {
            let _ = writeln!(
                out,
                "NONBLOCKING: every link carries one source or one destination \
                 across all SD pairs (Lemma 1)"
            );
        }
        Err(v) => {
            let _ = writeln!(
                out,
                "BLOCKING: link {} carries multiple sources AND destinations",
                v.channel
            );
            let _ = writeln!(
                out,
                "  witness permutation: ({} -> {}) and ({} -> {}) contend",
                v.sources[0], v.destinations[0], v.sources[1], v.destinations[1]
            );
        }
    }
    out
}

/// Run the command.
pub fn run(opts: &Opts) -> Result<String, CliError> {
    let ft = build_ftree(opts)?;
    let name = opts.flag("router").unwrap_or("yuan");
    let body = match name {
        "yuan" => {
            let router =
                YuanDeterministic::new(&ft).map_err(|e| CliError::Failed(e.to_string()))?;
            audit_router(&router)
        }
        "dmodk" => audit_router(&DModK::new(&ft)),
        "smodk" => audit_router(&SModK::new(&ft)),
        other => {
            return Err(CliError::Usage(format!(
                "verify supports deterministic routers only (yuan|dmodk|smodk), got `{other}`"
            )))
        }
    };
    Ok(format!(
        "audit of ftree({}+{}, {}) under `{name}` routing:\n{body}",
        ft.n(),
        ft.m(),
        ft.r()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Opts {
        Opts::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn yuan_passes() {
        assert!(run(&argv("2 4 5")).unwrap().contains("NONBLOCKING"));
    }

    #[test]
    fn dmodk_blocks_with_witness() {
        let out = run(&argv("2 2 5 --router dmodk")).unwrap();
        assert!(out.contains("BLOCKING"));
        assert!(out.contains("witness permutation"));
    }

    #[test]
    fn yuan_rejects_small_m() {
        assert!(run(&argv("2 3 5")).is_err());
    }

    #[test]
    fn adaptive_not_supported_here() {
        assert!(run(&argv("2 4 5 --router adaptive")).is_err());
    }
}
