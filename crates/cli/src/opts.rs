//! Minimal argument parsing: positionals plus `--key value` flags.

use std::collections::HashMap;
use std::fmt;

/// CLI errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// Bad invocation; the string is the message/usage to print.
    Usage(String),
    /// The command ran but failed (bad parameters, infeasible fabric, I/O).
    Failed(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(s) | CliError::Failed(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed arguments: positionals in order plus string-valued flags.
#[derive(Clone, Debug, Default)]
pub struct Opts {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
}

impl Opts {
    /// Parse `--key value` flags; everything else is positional.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut out = Opts::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("flag --{key} expects a value")))?;
                out.flags.insert(key.to_string(), value.clone());
            } else {
                out.positionals.push(a.clone());
            }
        }
        Ok(out)
    }

    /// Positional `i` as a raw string.
    pub fn pos_str(&self, i: usize, name: &str) -> Result<&str, CliError> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing argument <{name}>")))
    }

    /// Positional `i` parsed as `usize`.
    pub fn pos_usize(&self, i: usize, name: &str) -> Result<usize, CliError> {
        let raw = self
            .positionals
            .get(i)
            .ok_or_else(|| CliError::Usage(format!("missing argument <{name}>")))?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("<{name}> must be an integer, got `{raw}`")))
    }

    /// The `(n, m, r)` triple most commands take.
    pub fn nmr(&self) -> Result<(usize, usize, usize), CliError> {
        Ok((
            self.pos_usize(0, "n")?,
            self.pos_usize(1, "m")?,
            self.pos_usize(2, "r")?,
        ))
    }

    /// Optional flag as raw string.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Flag parsed as `T`, with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} got invalid value `{raw}`"))),
        }
    }

    /// Number of positionals (for arity checks).
    pub fn num_positionals(&self) -> usize {
        self.positionals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_mixed_args() {
        let o = Opts::parse(&argv("2 4 5 --router yuan --seed 7")).unwrap();
        assert_eq!(o.nmr().unwrap(), (2, 4, 5));
        assert_eq!(o.flag("router"), Some("yuan"));
        assert_eq!(o.flag_or::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(o.flag_or::<u64>("missing", 9).unwrap(), 9);
        assert_eq!(o.num_positionals(), 3);
    }

    #[test]
    fn missing_flag_value() {
        assert!(matches!(
            Opts::parse(&argv("build --dot")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bad_numbers() {
        let o = Opts::parse(&argv("two 4 5")).unwrap();
        assert!(matches!(o.nmr(), Err(CliError::Usage(_))));
        let o = Opts::parse(&argv("2 4")).unwrap();
        assert!(matches!(o.nmr(), Err(CliError::Usage(_))));
        let o = Opts::parse(&argv("1 2 3 --rate abc")).unwrap();
        assert!(o.flag_or::<f64>("rate", 1.0).is_err());
    }
}
