//! The `ftclos` command-line binary. All logic lives in the library so it
//! can be tested; this shim only handles process I/O and exit codes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ftclos_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            if !output.ends_with('\n') {
                println!();
            }
        }
        Err(ftclos_cli::CliError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(ftclos_cli::CliError::Failed(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
