//! Determinism across thread counts: blocking witnesses and fluid rates
//! must be byte-identical no matter how the parallel sweeps are scheduled.
//! The engine's first-witness reduction and the waterfill solver both claim
//! schedule-independence; this drives the real binary under
//! `RAYON_NUM_THREADS` 1, 2, and 8 and diffs complete outputs.

use std::process::Command;

/// Run the `ftclos` binary with a fixed thread count, returning stdout.
fn run_with_threads(args: &[&str], threads: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_ftclos"))
        .args(args)
        .env("RAYON_NUM_THREADS", threads)
        .output()
        .expect("spawn ftclos");
    assert!(
        out.status.success(),
        "ftclos {args:?} failed under RAYON_NUM_THREADS={threads}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

/// The same invocation at 1, 2, and 8 threads must emit identical bytes.
fn assert_thread_invariant(args: &[&str]) {
    let baseline = run_with_threads(args, "1");
    for threads in ["2", "8"] {
        let got = run_with_threads(args, threads);
        assert_eq!(
            baseline, got,
            "ftclos {args:?} output depends on RAYON_NUM_THREADS={threads}"
        );
    }
}

#[test]
fn blocking_witness_is_thread_count_invariant() {
    // d-mod-k on an undersized fabric: the audit must report the *same*
    // violating channel and witness pairs regardless of scan parallelism.
    assert_thread_invariant(&["verify", "2", "2", "5", "--router", "dmodk"]);
}

#[test]
fn nonblocking_verdict_is_thread_count_invariant() {
    assert_thread_invariant(&["verify", "3", "9", "7"]);
}

#[test]
fn fluid_rates_are_thread_count_invariant() {
    // Full adversarial suite, JSON: every per-pattern rate, round count,
    // and utilization decile must match bit-for-bit.
    assert_thread_invariant(&["flowsim", "2", "4", "5", "--json"]);
    assert_thread_invariant(&[
        "flowsim",
        "2",
        "2",
        "5",
        "--router",
        "dmodk",
        "--pattern",
        "random",
        "--seed",
        "3",
        "--json",
    ]);
}

#[test]
fn deadlock_verdicts_are_thread_count_invariant() {
    // The CDG build fans path walks out over rayon; the dependency bitmap
    // is a set union (order-independent), so verdicts, dependency counts,
    // and the witness cycle must be byte-identical at any thread count.
    assert_thread_invariant(&["deadlock", "2", "4", "5", "--json"]);
    assert_thread_invariant(&["deadlock", "2", "4", "5", "--fail-tops", "1", "--seed", "3"]);
}

#[test]
fn deadlock_witness_and_injection_are_thread_count_invariant() {
    // The valley witness cycle (lowest cyclic channel, minimal length,
    // ascending successor iteration) and the wedge statistics of the pinned
    // injection run are both deterministic.
    assert_thread_invariant(&[
        "deadlock", "1", "1", "4", "--router", "valley", "--inject", "--json",
    ]);
}

#[test]
fn event_engine_reports_are_thread_count_invariant() {
    // The event-driven engine is single-threaded by construction, but its
    // reports ride the same CLI plumbing as everything else; both output
    // forms must be byte-identical at any thread count — and identical to
    // the cycle engine's run, engine tag aside.
    let base = [
        "simulate",
        "2",
        "4",
        "5",
        "--pattern",
        "shift:3",
        "--rate",
        "0.9",
        "--cycles",
        "600",
        "--seed",
        "5",
    ];
    for json in [false, true] {
        let mut event = base.to_vec();
        event.extend(["--engine", "event"]);
        if json {
            event.push("--json");
        }
        assert_thread_invariant(&event);
        let mut cycle = base.to_vec();
        cycle.extend(["--engine", "cycle"]);
        if json {
            cycle.push("--json");
        }
        let cycle_out = run_with_threads(&cycle, "1")
            .replace("\"engine\":\"cycle\"", "\"engine\":\"event\"")
            .replace("(HolFifo)", "(HolFifo, event engine)");
        assert_eq!(
            cycle_out,
            run_with_threads(&event, "1"),
            "engines must agree on the full report"
        );
    }
}

#[test]
fn blocking_sample_fraction_is_thread_count_invariant() {
    assert_thread_invariant(&[
        "blocking",
        "2",
        "2",
        "5",
        "--router",
        "dmodk",
        "--samples",
        "40",
    ]);
}

#[test]
fn campaign_reports_are_thread_count_invariant() {
    // Randomized waves fan judgements and shrinks over rayon; per-set RNG
    // streams are keyed by (seed, wave, index) alone, so the report —
    // killer order, minimal cores, criticality ranking — is schedule-free.
    assert_thread_invariant(&[
        "campaign",
        "2",
        "4",
        "5",
        "--waves",
        "4",
        "--wave-size",
        "6",
        "--seed",
        "7",
        "--shrink",
        "--json",
    ]);
    // Exhaustive mode must report the lexicographically-first killer no
    // matter which parallel partition finds one first.
    assert_thread_invariant(&[
        "campaign",
        "2",
        "4",
        "5",
        "--mode",
        "exhaustive",
        "--k",
        "2",
        "--universe",
        "mixed",
    ]);
}

#[test]
fn congestion_head_to_head_is_thread_count_invariant() {
    // Greedy order, rounding RNG streams (keyed by seed + trial alone),
    // repair scan order, and the embedded fluid rates are all deterministic;
    // the full head-to-head table must be byte-identical at any thread
    // count, in both output forms.
    assert_thread_invariant(&["congestion", "2", "4", "5", "--json"]);
    assert_thread_invariant(&[
        "congestion",
        "2",
        "2",
        "5",
        "--pattern",
        "random",
        "--seed",
        "3",
    ]);
}

#[test]
fn congestion_faulted_and_churn_reports_are_thread_count_invariant() {
    // Fault-masked candidates plus the per-epoch churn replay: the flap
    // schedule, epoch fault sets, and masked solves are all seed-keyed.
    assert_thread_invariant(&[
        "congestion",
        "2",
        "4",
        "5",
        "--fail-tops",
        "1",
        "--seed",
        "7",
        "--json",
    ]);
    assert_thread_invariant(&[
        "congestion",
        "2",
        "4",
        "5",
        "--churn-links",
        "2",
        "--churn-cycles",
        "800",
        "--seed",
        "5",
    ]);
}

#[test]
fn campaign_checkpoint_resume_matches_uninterrupted_at_any_thread_count() {
    // Halting after 2 of 4 waves, then resuming from the checkpoint file,
    // must reproduce the uninterrupted report byte-for-byte — and the
    // uninterrupted report itself must not depend on the thread count.
    let base = [
        "campaign",
        "2",
        "4",
        "5",
        "--waves",
        "4",
        "--wave-size",
        "6",
        "--links",
        "2",
        "--switches",
        "1",
        "--seed",
        "11",
        "--shrink",
    ];
    let reference = run_with_threads(&base, "1");
    for threads in ["1", "2", "8"] {
        assert_eq!(
            reference,
            run_with_threads(&base, threads),
            "uninterrupted campaign diverged at {threads} threads"
        );
        let ckpt = std::env::temp_dir().join(format!("ftclos_campaign_ckpt_{threads}.txt"));
        let ckpt = ckpt.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(ckpt);
        let mut halted = base.to_vec();
        halted.extend(["--checkpoint", ckpt, "--halt-after", "2"]);
        let partial = run_with_threads(&halted, threads);
        assert_ne!(reference, partial, "halt-after must stop early");
        let mut resumed = base.to_vec();
        resumed.extend(["--checkpoint", ckpt, "--resume"]);
        assert_eq!(
            reference,
            run_with_threads(&resumed, threads),
            "checkpoint resume diverged at {threads} threads"
        );
        let _ = std::fs::remove_file(ckpt);
    }
}
